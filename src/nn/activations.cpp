#include "nn/activations.h"

#include "nn/lowering.h"
#include "util/check.h"

namespace csq {

void ReLU::lower(GraphLowering& lowering) { lowering.lower_relu(); }

Tensor ReLU::forward(const Tensor& input, bool training) {
  Tensor output(input.shape());
  Tensor mask(input.shape());
  const float* in = input.data();
  float* out = output.data();
  float* m = mask.data();
  const std::int64_t count = input.numel();
  for (std::int64_t i = 0; i < count; ++i) {
    const bool positive = in[i] > 0.0f;
    out[i] = positive ? in[i] : 0.0f;
    m[i] = positive ? 1.0f : 0.0f;
  }
  if (training) {
    cached_mask_ = std::move(mask);
  } else {
    cached_mask_ = Tensor();
  }
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  CSQ_CHECK(!cached_mask_.empty())
      << "relu " << name() << ": backward without training forward";
  CSQ_CHECK(grad_output.same_shape(cached_mask_))
      << "relu " << name() << ": grad shape mismatch";
  Tensor grad_input(grad_output.shape());
  const float* go = grad_output.data();
  const float* m = cached_mask_.data();
  float* gi = grad_input.data();
  const std::int64_t count = grad_output.numel();
  for (std::int64_t i = 0; i < count; ++i) gi[i] = go[i] * m[i];
  cached_mask_ = Tensor();
  return grad_input;
}

}  // namespace csq
