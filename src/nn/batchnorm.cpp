#include "nn/batchnorm.h"

#include <cmath>

#include "nn/lowering.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace csq {

BatchNorm2d::BatchNorm2d(const std::string& name, std::int64_t channels,
                         float momentum, float epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(name + ".gamma", Tensor::full({channels}, 1.0f),
             /*apply_weight_decay=*/false),
      beta_(name + ".beta", Tensor({channels}),
            /*apply_weight_decay=*/false),
      running_mean_({channels}),
      running_var_(Tensor::full({channels}, 1.0f)) {
  CSQ_CHECK(channels > 0) << "batchnorm: bad channel count";
  set_name(name);
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  CSQ_CHECK(input.ndim() == 4 && input.dim(1) == channels_)
      << "batchnorm " << name() << ": expected (B," << channels_
      << ",H,W), got " << input.shape_string();
  const std::int64_t batch = input.dim(0);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  const std::int64_t plane = height * width;
  const std::int64_t count = batch * plane;

  Tensor output(input.shape());
  const float* in = input.data();
  float* out = output.data();
  const float* gamma = gamma_.value.data();
  const float* beta = beta_.value.data();

  if (!training) {
    const float* mean = running_mean_.data();
    const float* var = running_var_.data();
    parallel_for(0, channels_, [&](std::int64_t c) {
      const float inv_std = 1.0f / std::sqrt(var[c] + epsilon_);
      const float scale = gamma[c] * inv_std;
      const float shift = beta[c] - mean[c] * scale;
      for (std::int64_t b = 0; b < batch; ++b) {
        const float* src = in + (b * channels_ + c) * plane;
        float* dst = out + (b * channels_ + c) * plane;
        for (std::int64_t p = 0; p < plane; ++p) dst[p] = src[p] * scale + shift;
      }
    });
    return output;
  }

  Tensor xhat(input.shape());
  Tensor inv_std_t({channels_});
  float* xhat_data = xhat.data();
  float* inv_std_data = inv_std_t.data();
  float* run_mean = running_mean_.data();
  float* run_var = running_var_.data();

  parallel_for(0, channels_, [&](std::int64_t c) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::int64_t b = 0; b < batch; ++b) {
      const float* src = in + (b * channels_ + c) * plane;
      for (std::int64_t p = 0; p < plane; ++p) {
        sum += src[p];
        sum_sq += static_cast<double>(src[p]) * src[p];
      }
    }
    const float mean = static_cast<float>(sum / count);
    const float var =
        static_cast<float>(sum_sq / count - static_cast<double>(mean) * mean);
    const float safe_var = var < 0.0f ? 0.0f : var;
    const float inv_std = 1.0f / std::sqrt(safe_var + epsilon_);
    inv_std_data[c] = inv_std;

    // Unbiased variance for running stats (matches standard framework
    // behaviour); guard count==1.
    const float unbiased =
        count > 1 ? safe_var * static_cast<float>(count) /
                        static_cast<float>(count - 1)
                  : safe_var;
    if (capture_mean_ != nullptr) {
      // Capture mode: hand the stats to the data-parallel trainer for a
      // shard-ordered replay instead of updating in place.
      capture_mean_[c] = mean;
      capture_var_[c] = unbiased;
    } else {
      run_mean[c] = (1.0f - momentum_) * run_mean[c] + momentum_ * mean;
      run_var[c] = (1.0f - momentum_) * run_var[c] + momentum_ * unbiased;
    }

    const float scale = gamma[c];
    const float shift = beta[c];
    for (std::int64_t b = 0; b < batch; ++b) {
      const float* src = in + (b * channels_ + c) * plane;
      float* xh = xhat_data + (b * channels_ + c) * plane;
      float* dst = out + (b * channels_ + c) * plane;
      for (std::int64_t p = 0; p < plane; ++p) {
        const float normalized = (src[p] - mean) * inv_std;
        xh[p] = normalized;
        dst[p] = normalized * scale + shift;
      }
    }
  });

  cached_xhat_ = std::move(xhat);
  cached_inv_std_ = std::move(inv_std_t);
  cached_batch_ = batch;
  cached_h_ = height;
  cached_w_ = width;
  return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  CSQ_CHECK(cached_batch_ > 0)
      << "batchnorm " << name() << ": backward without training forward";
  const std::int64_t batch = cached_batch_;
  const std::int64_t plane = cached_h_ * cached_w_;
  const std::int64_t count = batch * plane;
  CSQ_CHECK(grad_output.ndim() == 4 && grad_output.dim(0) == batch &&
            grad_output.dim(1) == channels_ && grad_output.dim(2) == cached_h_ &&
            grad_output.dim(3) == cached_w_)
      << "batchnorm " << name() << ": grad shape mismatch";

  Tensor grad_input(grad_output.shape());
  const float* go = grad_output.data();
  const float* xhat = cached_xhat_.data();
  const float* inv_std = cached_inv_std_.data();
  const float* gamma = gamma_.value.data();
  float* gi = grad_input.data();
  float* dgamma = gamma_.grad.data();
  float* dbeta = beta_.grad.data();

  parallel_for(0, channels_, [&](std::int64_t c) {
    // Standard BN backward:
    //   dxhat = dy * gamma
    //   dx = inv_std/N * (N*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (std::int64_t b = 0; b < batch; ++b) {
      const std::int64_t base = (b * channels_ + c) * plane;
      for (std::int64_t p = 0; p < plane; ++p) {
        const float dy = go[base + p];
        sum_dy += dy;
        sum_dy_xhat += static_cast<double>(dy) * xhat[base + p];
      }
    }
    dgamma[c] += static_cast<float>(sum_dy_xhat);
    dbeta[c] += static_cast<float>(sum_dy);

    const float mean_dy = static_cast<float>(sum_dy / count);
    const float mean_dy_xhat = static_cast<float>(sum_dy_xhat / count);
    const float scale = gamma[c] * inv_std[c];
    for (std::int64_t b = 0; b < batch; ++b) {
      const std::int64_t base = (b * channels_ + c) * plane;
      for (std::int64_t p = 0; p < plane; ++p) {
        gi[base + p] = scale * (go[base + p] - mean_dy -
                                xhat[base + p] * mean_dy_xhat);
      }
    }
  });

  cached_xhat_ = Tensor();
  cached_inv_std_ = Tensor();
  cached_batch_ = 0;
  return grad_input;
}

void BatchNorm2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

void BatchNorm2d::set_stat_capture(float* mean_out, float* var_out) {
  CSQ_CHECK((mean_out == nullptr) == (var_out == nullptr))
      << "batchnorm " << name() << ": capture spans must be set together";
  capture_mean_ = mean_out;
  capture_var_ = var_out;
}

void BatchNorm2d::replay_batch_stats(const float* mean,
                                     const float* unbiased_var) {
  float* run_mean = running_mean_.data();
  float* run_var = running_var_.data();
  for (std::int64_t c = 0; c < channels_; ++c) {
    run_mean[c] = (1.0f - momentum_) * run_mean[c] + momentum_ * mean[c];
    run_var[c] = (1.0f - momentum_) * run_var[c] + momentum_ * unbiased_var[c];
  }
}

void BatchNorm2d::lower(GraphLowering& lowering) {
  lowering.lower_batchnorm(*this);
}

}  // namespace csq
