#include "nn/pooling.h"

#include <algorithm>
#include <limits>

#include "nn/lowering.h"
#include "util/check.h"

namespace csq {

void Pool2dConfig::validate(const char* name) const {
  CSQ_CHECK(kernel_h >= 1 && kernel_w >= 1)
      << "pool " << name << ": bad kernel " << kernel_h << "x" << kernel_w;
  CSQ_CHECK(stride >= 1) << "pool " << name << ": bad stride " << stride;
  CSQ_CHECK(pad >= 0 && pad < kernel_h && pad < kernel_w)
      << "pool " << name << ": padding " << pad
      << " must be smaller than the kernel";
}

void MaxPool2d::lower(GraphLowering& lowering) {
  lowering.lower_maxpool(config_);
}

void AvgPool2d::lower(GraphLowering& lowering) {
  lowering.lower_avgpool(config_, count_include_pad_);
}

void GlobalAvgPool::lower(GraphLowering& lowering) {
  lowering.lower_global_avg_pool();
}

void Flatten::lower(GraphLowering& lowering) { lowering.lower_flatten(); }

namespace {

// Shared geometry check for the pooling forwards: (B,C,H,W) input and a
// positive output grid.
void check_pool_input(const char* kind, const std::string& name,
                      const Tensor& input, const Pool2dConfig& config) {
  CSQ_CHECK(input.ndim() == 4) << kind << " expects (B,C,H,W)";
  CSQ_CHECK(config.out_h(input.dim(2)) >= 1 &&
            config.out_w(input.dim(3)) >= 1)
      << kind << " " << name << ": input " << input.shape_string()
      << " smaller than the " << config.kernel_h << "x" << config.kernel_w
      << " window";
}

}  // namespace

MaxPool2d::MaxPool2d(const std::string& name, std::int64_t kernel)
    : MaxPool2d(name, Pool2dConfig::square(kernel)) {}

MaxPool2d::MaxPool2d(const std::string& name, const Pool2dConfig& config)
    : config_(config) {
  config_.validate(name.c_str());
  set_name(name);
}

Tensor MaxPool2d::forward(const Tensor& input, bool training) {
  check_pool_input("maxpool", name(), input, config_);
  const std::int64_t batch = input.dim(0);
  const std::int64_t channels = input.dim(1);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  const std::int64_t out_h = config_.out_h(height);
  const std::int64_t out_w = config_.out_w(width);

  Tensor output({batch, channels, out_h, out_w});
  std::vector<std::int64_t> argmax(
      static_cast<std::size_t>(output.numel()));
  const float* in = input.data();
  float* out = output.data();

  std::int64_t out_index = 0;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = in + (b * channels + c) * height * width;
      const std::int64_t plane_base = (b * channels + c) * height * width;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox, ++out_index) {
          // Padded taps are implicit -inf: the max runs over the in-bounds
          // window only (validate() guarantees it is non-empty).
          std::int64_t y0, y1, x0, x1;
          config_.window(oy, config_.kernel_h, height, y0, y1);
          config_.window(ox, config_.kernel_w, width, x0, x1);
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_index = 0;
          for (std::int64_t iy = y0; iy < y1; ++iy) {
            for (std::int64_t ix = x0; ix < x1; ++ix) {
              const float value = plane[iy * width + ix];
              if (value > best) {
                best = value;
                best_index = plane_base + iy * width + ix;
              }
            }
          }
          out[out_index] = best;
          argmax[static_cast<std::size_t>(out_index)] = best_index;
        }
      }
    }
  }

  if (training) {
    cached_argmax_ = std::move(argmax);
    cached_input_shape_ = input.shape();
  } else {
    cached_argmax_.clear();
  }
  return output;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  CSQ_CHECK(!cached_argmax_.empty())
      << "maxpool " << name() << ": backward without training forward";
  CSQ_CHECK(grad_output.numel() ==
            static_cast<std::int64_t>(cached_argmax_.size()))
      << "maxpool " << name() << ": grad size mismatch";
  Tensor grad_input(cached_input_shape_);
  float* gi = grad_input.data();
  const float* go = grad_output.data();
  // Scatter-add: with stride < kernel the windows overlap, so one input tap
  // can win several windows and accumulates their gradients.
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    gi[cached_argmax_[static_cast<std::size_t>(i)]] += go[i];
  }
  cached_argmax_.clear();
  return grad_input;
}

AvgPool2d::AvgPool2d(const std::string& name, const Pool2dConfig& config,
                     bool count_include_pad)
    : config_(config), count_include_pad_(count_include_pad) {
  config_.validate(name.c_str());
  set_name(name);
}

Tensor AvgPool2d::forward(const Tensor& input, bool training) {
  check_pool_input("avgpool", name(), input, config_);
  const std::int64_t batch = input.dim(0);
  const std::int64_t channels = input.dim(1);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  const std::int64_t out_h = config_.out_h(height);
  const std::int64_t out_w = config_.out_w(width);
  const float inv_window =
      1.0f / static_cast<float>(config_.kernel_h * config_.kernel_w);

  Tensor output({batch, channels, out_h, out_w});
  const float* in = input.data();
  float* out = output.data();

  std::int64_t out_index = 0;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = in + (b * channels + c) * height * width;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox, ++out_index) {
          // Padded taps contribute zero; the divisor is kernel_h*kernel_w
          // (count_include_pad) or the window's valid-tap count.
          std::int64_t y0, y1, x0, x1;
          config_.window(oy, config_.kernel_h, height, y0, y1);
          config_.window(ox, config_.kernel_w, width, x0, x1);
          float acc = 0.0f;
          for (std::int64_t iy = y0; iy < y1; ++iy) {
            for (std::int64_t ix = x0; ix < x1; ++ix) {
              acc += plane[iy * width + ix];
            }
          }
          out[out_index] =
              count_include_pad_
                  ? acc * inv_window
                  : acc / static_cast<float>((y1 - y0) * (x1 - x0));
        }
      }
    }
  }

  if (training) {
    cached_input_shape_ = input.shape();
  } else {
    cached_input_shape_.clear();
  }
  return output;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  CSQ_CHECK(!cached_input_shape_.empty())
      << "avgpool " << name() << ": backward without training forward";
  const std::int64_t batch = cached_input_shape_[0];
  const std::int64_t channels = cached_input_shape_[1];
  const std::int64_t height = cached_input_shape_[2];
  const std::int64_t width = cached_input_shape_[3];
  const std::int64_t out_h = config_.out_h(height);
  const std::int64_t out_w = config_.out_w(width);
  CSQ_CHECK(grad_output.ndim() == 4 && grad_output.dim(0) == batch &&
            grad_output.dim(1) == channels && grad_output.dim(2) == out_h &&
            grad_output.dim(3) == out_w)
      << "avgpool " << name() << ": grad shape mismatch";
  const float inv_window =
      1.0f / static_cast<float>(config_.kernel_h * config_.kernel_w);

  Tensor grad_input(cached_input_shape_);
  float* gi = grad_input.data();
  const float* go = grad_output.data();
  std::int64_t out_index = 0;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < channels; ++c) {
      float* plane = gi + (b * channels + c) * height * width;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox, ++out_index) {
          std::int64_t y0, y1, x0, x1;
          config_.window(oy, config_.kernel_h, height, y0, y1);
          config_.window(ox, config_.kernel_w, width, x0, x1);
          const float value =
              count_include_pad_
                  ? go[out_index] * inv_window
                  : go[out_index] /
                        static_cast<float>((y1 - y0) * (x1 - x0));
          for (std::int64_t iy = y0; iy < y1; ++iy) {
            for (std::int64_t ix = x0; ix < x1; ++ix) {
              plane[iy * width + ix] += value;
            }
          }
        }
      }
    }
  }
  cached_input_shape_.clear();
  return grad_input;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool training) {
  CSQ_CHECK(input.ndim() == 4) << "global_avg_pool expects (B,C,H,W)";
  const std::int64_t batch = input.dim(0);
  const std::int64_t channels = input.dim(1);
  const std::int64_t plane = input.dim(2) * input.dim(3);

  Tensor output({batch, channels});
  const float* in = input.data();
  float* out = output.data();
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* src = in + (b * channels + c) * plane;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < plane; ++p) acc += src[p];
      out[b * channels + c] = acc / static_cast<float>(plane);
    }
  }
  if (training) cached_input_shape_ = input.shape();
  return output;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  CSQ_CHECK(!cached_input_shape_.empty())
      << "global_avg_pool " << name() << ": backward without forward";
  const std::int64_t batch = cached_input_shape_[0];
  const std::int64_t channels = cached_input_shape_[1];
  const std::int64_t plane = cached_input_shape_[2] * cached_input_shape_[3];
  CSQ_CHECK(grad_output.ndim() == 2 && grad_output.dim(0) == batch &&
            grad_output.dim(1) == channels)
      << "global_avg_pool " << name() << ": grad shape mismatch";

  Tensor grad_input(cached_input_shape_);
  float* gi = grad_input.data();
  const float* go = grad_output.data();
  const float inv_plane = 1.0f / static_cast<float>(plane);
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float value = go[b * channels + c] * inv_plane;
      float* dst = gi + (b * channels + c) * plane;
      for (std::int64_t p = 0; p < plane; ++p) dst[p] = value;
    }
  }
  cached_input_shape_.clear();
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input, bool training) {
  CSQ_CHECK(input.ndim() >= 2) << "flatten expects at least 2-d input";
  if (training) cached_input_shape_ = input.shape();
  const std::int64_t batch = input.dim(0);
  return input.reshaped({batch, input.numel() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  CSQ_CHECK(!cached_input_shape_.empty())
      << "flatten " << name() << ": backward without forward";
  Tensor grad = grad_output.reshaped(cached_input_shape_);
  cached_input_shape_.clear();
  return grad;
}

}  // namespace csq
