#include "nn/pooling.h"

#include <limits>

#include "nn/lowering.h"
#include "util/check.h"

namespace csq {

void MaxPool2d::lower(GraphLowering& lowering) {
  lowering.lower_maxpool(kernel_);
}

void GlobalAvgPool::lower(GraphLowering& lowering) {
  lowering.lower_global_avg_pool();
}

void Flatten::lower(GraphLowering& lowering) { lowering.lower_flatten(); }

MaxPool2d::MaxPool2d(const std::string& name, std::int64_t kernel)
    : kernel_(kernel) {
  CSQ_CHECK(kernel >= 1) << "maxpool: bad kernel";
  set_name(name);
}

Tensor MaxPool2d::forward(const Tensor& input, bool training) {
  CSQ_CHECK(input.ndim() == 4) << "maxpool expects (B,C,H,W)";
  const std::int64_t batch = input.dim(0);
  const std::int64_t channels = input.dim(1);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  CSQ_CHECK(height % kernel_ == 0 && width % kernel_ == 0)
      << "maxpool " << name() << ": input " << input.shape_string()
      << " not divisible by kernel " << kernel_;
  const std::int64_t out_h = height / kernel_;
  const std::int64_t out_w = width / kernel_;

  Tensor output({batch, channels, out_h, out_w});
  std::vector<std::int64_t> argmax(
      static_cast<std::size_t>(output.numel()));
  const float* in = input.data();
  float* out = output.data();

  std::int64_t out_index = 0;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = in + (b * channels + c) * height * width;
      const std::int64_t plane_base = (b * channels + c) * height * width;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox, ++out_index) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_index = 0;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t iy = oy * kernel_ + ky;
              const std::int64_t ix = ox * kernel_ + kx;
              const float value = plane[iy * width + ix];
              if (value > best) {
                best = value;
                best_index = plane_base + iy * width + ix;
              }
            }
          }
          out[out_index] = best;
          argmax[static_cast<std::size_t>(out_index)] = best_index;
        }
      }
    }
  }

  if (training) {
    cached_argmax_ = std::move(argmax);
    cached_input_shape_ = input.shape();
  } else {
    cached_argmax_.clear();
  }
  return output;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  CSQ_CHECK(!cached_argmax_.empty())
      << "maxpool " << name() << ": backward without training forward";
  CSQ_CHECK(grad_output.numel() ==
            static_cast<std::int64_t>(cached_argmax_.size()))
      << "maxpool " << name() << ": grad size mismatch";
  Tensor grad_input(cached_input_shape_);
  float* gi = grad_input.data();
  const float* go = grad_output.data();
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    gi[cached_argmax_[static_cast<std::size_t>(i)]] += go[i];
  }
  cached_argmax_.clear();
  return grad_input;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool training) {
  CSQ_CHECK(input.ndim() == 4) << "global_avg_pool expects (B,C,H,W)";
  const std::int64_t batch = input.dim(0);
  const std::int64_t channels = input.dim(1);
  const std::int64_t plane = input.dim(2) * input.dim(3);

  Tensor output({batch, channels});
  const float* in = input.data();
  float* out = output.data();
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* src = in + (b * channels + c) * plane;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < plane; ++p) acc += src[p];
      out[b * channels + c] = acc / static_cast<float>(plane);
    }
  }
  if (training) cached_input_shape_ = input.shape();
  return output;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  CSQ_CHECK(!cached_input_shape_.empty())
      << "global_avg_pool " << name() << ": backward without forward";
  const std::int64_t batch = cached_input_shape_[0];
  const std::int64_t channels = cached_input_shape_[1];
  const std::int64_t plane = cached_input_shape_[2] * cached_input_shape_[3];
  CSQ_CHECK(grad_output.ndim() == 2 && grad_output.dim(0) == batch &&
            grad_output.dim(1) == channels)
      << "global_avg_pool " << name() << ": grad shape mismatch";

  Tensor grad_input(cached_input_shape_);
  float* gi = grad_input.data();
  const float* go = grad_output.data();
  const float inv_plane = 1.0f / static_cast<float>(plane);
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float value = go[b * channels + c] * inv_plane;
      float* dst = gi + (b * channels + c) * plane;
      for (std::int64_t p = 0; p < plane; ++p) dst[p] = value;
    }
  }
  cached_input_shape_.clear();
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input, bool training) {
  CSQ_CHECK(input.ndim() >= 2) << "flatten expects at least 2-d input";
  if (training) cached_input_shape_ = input.shape();
  const std::int64_t batch = input.dim(0);
  return input.reshaped({batch, input.numel() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  CSQ_CHECK(!cached_input_shape_.empty())
      << "flatten " << name() << ": backward without forward";
  Tensor grad = grad_output.reshaped(cached_input_shape_);
  cached_input_shape_.clear();
  return grad;
}

}  // namespace csq
