// Residual blocks (He et al. 2016): BasicBlock for ResNet-18/20, Bottleneck
// for ResNet-50. Blocks own their main path as a Sequential and hand-code the
// fork/join of the skip connection in forward/backward.
//
// Activation quantization: the model builders optionally insert an
// activation-quantizer module after every ReLU (the paper's "A-Bits"
// column). Blocks receive the same factory so their internal ReLUs are
// quantized consistently.
#pragma once

#include <functional>

#include "nn/module.h"
#include "nn/sequential.h"
#include "nn/weight_source.h"

namespace csq {

// Creates an activation-quantizer module for the given instance name, or
// returns nullptr for full-precision activations.
using ActQuantFactory = std::function<ModulePtr(const std::string& name)>;

struct BlockConfig {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t stride = 1;
};

class BasicBlock final : public Module {
 public:
  static constexpr std::int64_t expansion = 1;

  BasicBlock(const std::string& name, const BlockConfig& config,
             const WeightSourceFactory& weight_factory,
             const ActQuantFactory& act_factory, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void for_each_module(const std::function<void(Module&)>& fn) override;
  const char* kind() const override { return "basic_block"; }
  void lower(GraphLowering& lowering) override;

 private:
  Sequential main_;
  std::unique_ptr<Sequential> downsample_;  // null -> identity skip
  ModulePtr out_relu_;
  ModulePtr out_act_quant_;  // may be null
};

class Bottleneck final : public Module {
 public:
  static constexpr std::int64_t expansion = 4;

  Bottleneck(const std::string& name, const BlockConfig& config,
             const WeightSourceFactory& weight_factory,
             const ActQuantFactory& act_factory, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void for_each_module(const std::function<void(Module&)>& fn) override;
  const char* kind() const override { return "bottleneck"; }
  void lower(GraphLowering& lowering) override;

 private:
  Sequential main_;
  std::unique_ptr<Sequential> downsample_;
  ModulePtr out_relu_;
  ModulePtr out_act_quant_;
};

}  // namespace csq
