// Ordered container of modules; forward chains left-to-right, backward
// right-to-left.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.h"

namespace csq {

class Sequential final : public Module {
 public:
  explicit Sequential(const std::string& name) { set_name(name); }

  // Appends a module and returns a typed reference to it for convenience.
  template <typename T>
  T& add(std::unique_ptr<T> module) {
    T& ref = *module;
    modules_.push_back(std::move(module));
    return ref;
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void for_each_module(const std::function<void(Module&)>& fn) override;
  const char* kind() const override { return "sequential"; }
  void lower(GraphLowering& lowering) override;

  std::size_t size() const { return modules_.size(); }
  Module& module(std::size_t index) { return *modules_[index]; }

 private:
  std::vector<ModulePtr> modules_;
};

}  // namespace csq
