// Model: a module tree plus the bookkeeping the quantization pipeline needs —
// the flat parameter list for the optimizer and the registry of quantizable
// layers (name -> WeightSource) used for precision accounting, budget
// regularization and the layer-wise scheme dumps of the paper's Figure 4.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"
#include "nn/weight_source.h"

namespace csq {

struct QuantLayer {
  std::string name;
  WeightSource* source = nullptr;
};

class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  // Wraps a weight-source factory so that every created source is recorded
  // in this model's quant-layer registry. Builders must create all layers
  // through the wrapped factory and only then call set_root.
  WeightSourceFactory recording_factory(WeightSourceFactory base);

  void set_root(ModulePtr root);
  Module& root();
  bool has_root() const { return root_ != nullptr; }

  Tensor forward(const Tensor& input, bool training);
  Tensor backward(const Tensor& grad_output);

  // Flat parameter list (collected once; stable for the model's lifetime).
  const std::vector<Parameter*>& parameters();
  void zero_grad();

  const std::vector<QuantLayer>& quant_layers() const { return quant_layers_; }

  // Total quantizable weight elements across registered layers.
  std::int64_t total_weight_count() const;
  // Element-weighted average storage bits across registered layers.
  double average_bits() const;
  // 32 / average_bits — the Comp(x) column of the paper's tables.
  double compression_ratio() const;

 private:
  ModulePtr root_;
  std::vector<Parameter*> parameters_;
  bool parameters_collected_ = false;
  std::vector<QuantLayer> quant_layers_;
};

}  // namespace csq
