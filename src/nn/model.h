// Model: a module tree plus the bookkeeping the quantization pipeline needs —
// the flat parameter list for the optimizer and the registry of quantizable
// layers (name -> WeightSource) used for precision accounting, budget
// regularization and the layer-wise scheme dumps of the paper's Figure 4.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"
#include "nn/parameter_arena.h"
#include "nn/weight_source.h"

namespace csq {

struct QuantLayer {
  std::string name;
  WeightSource* source = nullptr;
};

class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  // Wraps a weight-source factory so that every created source is recorded
  // in this model's quant-layer registry. Builders must create all layers
  // through the wrapped factory and only then call set_root.
  WeightSourceFactory recording_factory(WeightSourceFactory base);

  void set_root(ModulePtr root);
  Module& root();
  bool has_root() const { return root_ != nullptr; }

  Tensor forward(const Tensor& input, bool training);
  Tensor backward(const Tensor& grad_output);

  // Depth-first module walk (Module::for_each_module) from the root.
  void for_each_module(const std::function<void(Module&)>& fn) {
    root().for_each_module(fn);
  }

  // Flat parameter list (collected once; stable for the model's lifetime).
  const std::vector<Parameter*>& parameters();
  void zero_grad();

  // Flat parameter arena over parameters(), bound lazily on first call.
  // Binding rebinds every Parameter's value/grad to an arena view (see
  // nn/parameter_arena.h) — transparent to modules, but callers that cache
  // raw data() pointers across the first arena() call would go stale, so
  // the optimizer/checkpoint/data-parallel layers bind before training.
  ParameterArena& arena();
  bool has_arena() const { return arena_ != nullptr; }

  const std::vector<QuantLayer>& quant_layers() const { return quant_layers_; }

  // Total quantizable weight elements across registered layers.
  std::int64_t total_weight_count() const;
  // Element-weighted average storage bits across registered layers.
  double average_bits() const;
  // 32 / average_bits — the Comp(x) column of the paper's tables.
  double compression_ratio() const;

 private:
  ModulePtr root_;
  std::vector<Parameter*> parameters_;
  bool parameters_collected_ = false;
  // unique_ptr keeps the arena's spans address-stable across Model moves.
  std::unique_ptr<ParameterArena> arena_;
  std::vector<QuantLayer> quant_layers_;
};

}  // namespace csq
