#include "nn/models.h"

#include <string>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "util/check.h"

namespace csq {

namespace {

void add_act_quant(Sequential& seq, const ActQuantFactory& act_factory,
                   const std::string& name) {
  if (act_factory) {
    if (ModulePtr quant = act_factory(name)) seq.add(std::move(quant));
  }
}

// conv3x3 -> bn -> relu [-> act quant] stem shared by the residual nets.
void add_stem(Sequential& seq, std::int64_t in_channels,
              std::int64_t out_channels,
              const WeightSourceFactory& weight_factory,
              const ActQuantFactory& act_factory, Rng& rng) {
  Conv2dConfig conv;
  conv.in_channels = in_channels;
  conv.out_channels = out_channels;
  conv.kernel = 3;
  conv.stride = 1;
  conv.pad = 1;
  seq.add(std::make_unique<Conv2d>("conv1", conv, weight_factory, rng));
  seq.add(std::make_unique<BatchNorm2d>("bn1", out_channels));
  seq.add(std::make_unique<ReLU>("relu1"));
  add_act_quant(seq, act_factory, "aq1");
}

template <typename Block>
std::int64_t add_stage(Sequential& seq, const std::string& stage_name,
                       std::int64_t in_channels, std::int64_t width,
                       int blocks, std::int64_t first_stride,
                       const WeightSourceFactory& weight_factory,
                       const ActQuantFactory& act_factory, Rng& rng) {
  std::int64_t channels = in_channels;
  for (int i = 0; i < blocks; ++i) {
    BlockConfig config;
    config.in_channels = channels;
    config.out_channels = width;
    config.stride = i == 0 ? first_stride : 1;
    seq.add(std::make_unique<Block>(stage_name + "." + std::to_string(i),
                                    config, weight_factory, act_factory, rng));
    channels = width * Block::expansion;
  }
  return channels;
}

}  // namespace

Model make_resnet_cifar(int depth, const ModelConfig& config,
                        const WeightSourceFactory& weight_factory,
                        const ActQuantFactory& act_factory, Rng& rng) {
  CSQ_CHECK((depth - 2) % 6 == 0 && depth >= 8)
      << "resnet_cifar: depth must be 6n+2, got " << depth;
  const int blocks_per_stage = (depth - 2) / 6;
  const std::int64_t w = config.base_width;

  Model model;
  const WeightSourceFactory factory =
      model.recording_factory(weight_factory);

  auto seq = std::make_unique<Sequential>("resnet" + std::to_string(depth));
  add_stem(*seq, config.in_channels, w, factory, act_factory, rng);
  std::int64_t channels = w;
  channels = add_stage<BasicBlock>(*seq, "layer1", channels, w,
                                   blocks_per_stage, 1, factory, act_factory,
                                   rng);
  channels = add_stage<BasicBlock>(*seq, "layer2", channels, 2 * w,
                                   blocks_per_stage, 2, factory, act_factory,
                                   rng);
  channels = add_stage<BasicBlock>(*seq, "layer3", channels, 4 * w,
                                   blocks_per_stage, 2, factory, act_factory,
                                   rng);
  seq->add(std::make_unique<GlobalAvgPool>("avgpool"));
  seq->add(std::make_unique<Linear>("fc", channels, config.num_classes,
                                    factory, rng));
  model.set_root(std::move(seq));
  return model;
}

Model make_vgg19bn(const ModelConfig& config,
                   const WeightSourceFactory& weight_factory,
                   const ActQuantFactory& act_factory, Rng& rng) {
  // VGG-19: conv counts per stage {2, 2, 4, 4, 4}, width multipliers
  // {1, 2, 4, 8, 8}, max-pool between stages.
  static constexpr int kStageConvs[5] = {2, 2, 4, 4, 4};
  static constexpr int kStageWidth[5] = {1, 2, 4, 8, 8};
  const std::int64_t w = config.base_width;

  Model model;
  const WeightSourceFactory factory =
      model.recording_factory(weight_factory);

  auto seq = std::make_unique<Sequential>("vgg19bn");
  std::int64_t channels = config.in_channels;
  int conv_index = 1;
  for (int stage = 0; stage < 5; ++stage) {
    const std::int64_t width = w * kStageWidth[stage];
    for (int i = 0; i < kStageConvs[stage]; ++i, ++conv_index) {
      const std::string name = "conv" + std::to_string(conv_index);
      Conv2dConfig conv;
      conv.in_channels = channels;
      conv.out_channels = width;
      conv.kernel = 3;
      conv.stride = 1;
      conv.pad = 1;
      seq->add(std::make_unique<Conv2d>(name, conv, factory, rng));
      seq->add(std::make_unique<BatchNorm2d>("bn" + std::to_string(conv_index),
                                             width));
      seq->add(std::make_unique<ReLU>("relu" + std::to_string(conv_index)));
      add_act_quant(*seq, act_factory, "aq" + std::to_string(conv_index));
      channels = width;
    }
    seq->add(std::make_unique<MaxPool2d>("pool" + std::to_string(stage + 1),
                                         2));
  }
  seq->add(std::make_unique<GlobalAvgPool>("avgpool"));
  seq->add(std::make_unique<Linear>("fc", channels, config.num_classes,
                                    factory, rng));
  model.set_root(std::move(seq));
  return model;
}

Model make_resnet18(const ModelConfig& config,
                    const WeightSourceFactory& weight_factory,
                    const ActQuantFactory& act_factory, Rng& rng) {
  const std::int64_t w = config.base_width;

  Model model;
  const WeightSourceFactory factory =
      model.recording_factory(weight_factory);

  auto seq = std::make_unique<Sequential>("resnet18");
  add_stem(*seq, config.in_channels, w, factory, act_factory, rng);
  std::int64_t channels = w;
  channels = add_stage<BasicBlock>(*seq, "layer1", channels, w, 2, 1, factory,
                                   act_factory, rng);
  channels = add_stage<BasicBlock>(*seq, "layer2", channels, 2 * w, 2, 2,
                                   factory, act_factory, rng);
  channels = add_stage<BasicBlock>(*seq, "layer3", channels, 4 * w, 2, 2,
                                   factory, act_factory, rng);
  channels = add_stage<BasicBlock>(*seq, "layer4", channels, 8 * w, 2, 2,
                                   factory, act_factory, rng);
  seq->add(std::make_unique<GlobalAvgPool>("avgpool"));
  seq->add(std::make_unique<Linear>("fc", channels, config.num_classes,
                                    factory, rng));
  model.set_root(std::move(seq));
  return model;
}

Model make_resnet50(const ModelConfig& config,
                    const WeightSourceFactory& weight_factory,
                    const ActQuantFactory& act_factory, Rng& rng) {
  const std::int64_t w = config.base_width;

  Model model;
  const WeightSourceFactory factory =
      model.recording_factory(weight_factory);

  auto seq = std::make_unique<Sequential>("resnet50");
  add_stem(*seq, config.in_channels, w, factory, act_factory, rng);
  std::int64_t channels = w;
  channels = add_stage<Bottleneck>(*seq, "layer1", channels, w, 3, 1, factory,
                                   act_factory, rng);
  channels = add_stage<Bottleneck>(*seq, "layer2", channels, 2 * w, 4, 2,
                                   factory, act_factory, rng);
  channels = add_stage<Bottleneck>(*seq, "layer3", channels, 4 * w, 6, 2,
                                   factory, act_factory, rng);
  channels = add_stage<Bottleneck>(*seq, "layer4", channels, 8 * w, 3, 2,
                                   factory, act_factory, rng);
  seq->add(std::make_unique<GlobalAvgPool>("avgpool"));
  seq->add(std::make_unique<Linear>("fc", channels, config.num_classes,
                                    factory, rng));
  model.set_root(std::move(seq));
  return model;
}

}  // namespace csq
