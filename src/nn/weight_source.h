// WeightSource: the seam between the NN layers and the quantization schemes.
//
// Conv2d and Linear do not own a weight tensor directly; they own a
// WeightSource that materializes the effective weight each step and receives
// dLoss/dWeight back. The full-precision baseline (DenseWeightSource, below)
// stores the weight as a plain parameter. Quantized trainings plug in
// sources from src/quant (STE-Uniform, DoReFa, LQ-Nets, BSQ) or src/core
// (the paper's bi-level continuous-sparsification parameterization).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace csq {

// Exact fixed-point form of a weight tensor:
//   weight[i] = scale / denominator * codes[i]
// with integer codes |q| <= denominator (the sign-magnitude grid of the
// paper's Eq. 1). This is the contract the export container and the integer
// inference runtime consume; a source that answers has_finalized_codes()
// must reproduce its weight(false) materialization from this form up to (at
// worst) one float rounding per element — finalized CSQ sources reproduce it
// bit-exactly.
struct WeightCodes {
  std::vector<std::int32_t> codes;
  float scale = 1.0f;
  float denominator = 255.0f;
  int bits = 0;  // occupied bits per weight (storage accounting)

  // Real value of one quantization step.
  float step() const { return scale / denominator; }
};

class WeightSource {
 public:
  virtual ~WeightSource() = default;

  WeightSource() = default;
  WeightSource(const WeightSource&) = delete;
  WeightSource& operator=(const WeightSource&) = delete;

  // Materializes the effective weight for the current step. The reference
  // stays valid until the next mutate/materialize call on this source.
  virtual const Tensor& weight(bool training) = 0;

  // Accumulates dLoss/dWeight into the source's own trainable parameters.
  // Must be called after a training-mode weight() materialization.
  virtual void backward(const Tensor& grad_weight) = 0;

  virtual void collect_parameters(std::vector<Parameter*>& out) = 0;

  virtual const char* kind() const = 0;

  // Number of weight elements provided by this source.
  virtual std::int64_t weight_count() const = 0;

  // Shape of the weight tensor ((OC,IC,KH,KW) for conv, (OUT,IN) for
  // linear). Used by the export/lowering paths.
  virtual std::vector<std::int64_t> weight_shape() const = 0;

  // Storage cost per weight element, in bits, under the source's current
  // quantization state (32 for dense). Drives the Comp(x) columns.
  virtual double bits_per_weight() const { return 32.0; }

  // True when the source's CURRENT weights have an exact integer fixed-point
  // form (finalized CSQ, BSQ's rounded planes, STE-Uniform's fake-quant
  // grid). Replaces the former dynamic_cast<CsqWeightSource*> coupling in
  // export/model_io, so any fixed-grid family can export and lower.
  virtual bool has_finalized_codes() const { return false; }

  // The integer form itself. Throws unless has_finalized_codes().
  virtual WeightCodes finalized_codes() const;

  // Number of times this source actually rebuilt its weight tensor. Eval
  // dirty-flag observability: an eval-mode weight() whose inputs (parameter
  // versions + scheme state) are unchanged returns the cached tensor and
  // leaves this counter flat — the regression tests assert it.
  std::uint64_t materialize_count() const { return materialize_count_; }

 protected:
  // Eval dirty-flag helpers for derived sources. A source computes a stamp
  // (the sum of its parameters' version counters plus an internal revision
  // bumped on every scheme mutation — set_beta, freeze_mask, finalize,
  // prune, requantize). Versions only grow, so any mutation changes the
  // sum. eval_cache_fresh() answers whether the cached weight tensor is
  // still valid for that stamp; note_materialized() records a rebuild whose
  // result stays valid until the stamp changes.
  bool eval_cache_fresh(std::uint64_t stamp) const {
    return eval_cache_valid_ && eval_cache_stamp_ == stamp;
  }
  void note_materialized(std::uint64_t stamp) {
    ++materialize_count_;
    eval_cache_valid_ = true;
    eval_cache_stamp_ = stamp;
  }
  void note_materialized_volatile() {
    ++materialize_count_;
    eval_cache_valid_ = false;
  }

 private:
  std::uint64_t materialize_count_ = 0;
  std::uint64_t eval_cache_stamp_ = 0;
  bool eval_cache_valid_ = false;
};

using WeightSourcePtr = std::unique_ptr<WeightSource>;

// Factory signature used by the model builders: receives the dotted layer
// name, the weight shape (OC,IC,KH,KW for conv, OUT,IN for linear) and the
// fan-in for initialization.
using WeightSourceFactory = std::function<WeightSourcePtr(
    const std::string& name, std::vector<std::int64_t> shape,
    std::int64_t fan_in, Rng& rng)>;

// Full-precision weight stored as a single dense parameter.
class DenseWeightSource final : public WeightSource {
 public:
  DenseWeightSource(const std::string& name, std::vector<std::int64_t> shape,
                    std::int64_t fan_in, Rng& rng);

  const Tensor& weight(bool training) override;
  void backward(const Tensor& grad_weight) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  const char* kind() const override { return "dense"; }
  std::int64_t weight_count() const override { return weight_.value.numel(); }
  std::vector<std::int64_t> weight_shape() const override {
    return weight_.value.shape();
  }

  Parameter& parameter() { return weight_; }

 private:
  Parameter weight_;
};

// Factory for the dense source (the FP baseline used in every table's
// first row).
WeightSourceFactory dense_weight_factory();

}  // namespace csq
