#include "nn/parameter_arena.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace csq {

ParameterArena::ParameterArena(const std::vector<Parameter*>& params) {
  CSQ_CHECK(!params.empty()) << "parameter arena: empty parameter list";
  std::int64_t total = 0;
  views_.reserve(params.size());
  for (Parameter* param : params) {
    CSQ_CHECK(param != nullptr) << "parameter arena: null parameter";
    CSQ_CHECK(!param->value.is_borrowed())
        << "parameter arena: " << param->name << " is already arena-bound";
    View view;
    view.param = param;
    view.offset = total;
    view.count = param->value.numel();
    view.weight_decay = param->weight_decay;
    views_.push_back(view);
    total += view.count;
  }

  // Offsets are unpadded: the value span is exactly the concatenation of the
  // per-parameter tensors, which is what makes the arena checkpoint blob
  // byte-identical to per-tensor serialization (core/model_io checkpoints).
  values_.resize(static_cast<std::size_t>(total));
  grads_.resize(static_cast<std::size_t>(total));

  for (const View& view : views_) {
    Parameter& param = *view.param;
    std::copy(param.value.data(), param.value.data() + view.count,
              values_.data() + view.offset);
    std::copy(param.grad.data(), param.grad.data() + view.count,
              grads_.data() + view.offset);
    const std::vector<std::int64_t> shape = param.value.shape();
    param.value = Tensor::borrow(values_.data() + view.offset, shape);
    param.grad = Tensor::borrow(grads_.data() + view.offset, shape);
    // Storage moved: any cached materialization holding the old address
    // must be rebuilt, which the version bump forces.
    param.mark_updated();
  }
}

void ParameterArena::zero_grads() {
  std::memset(grads_.data(), 0, grads_.size() * sizeof(float));
}

void ParameterArena::load_values(const float* src) {
  std::memcpy(values_.data(), src, values_.size() * sizeof(float));
  for (const View& view : views_) view.param->mark_updated();
}

bool ParameterArena::layout_matches(const ParameterArena& other) const {
  if (views_.size() != other.views_.size() || size() != other.size()) {
    return false;
  }
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (views_[i].offset != other.views_[i].offset ||
        views_[i].count != other.views_[i].count ||
        views_[i].weight_decay != other.views_[i].weight_decay) {
      return false;
    }
  }
  return true;
}

}  // namespace csq
