// Activation modules.
#pragma once

#include "nn/module.h"

namespace csq {

class ReLU final : public Module {
 public:
  explicit ReLU(const std::string& name) { set_name(name); }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  const char* kind() const override { return "relu"; }
  void lower(GraphLowering& lowering) override;

 private:
  Tensor cached_mask_;  // 1 where input > 0
};

}  // namespace csq
