#include "nn/softmax_ce.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace csq {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<int>& labels) {
  CSQ_CHECK(logits.ndim() == 2) << "softmax_ce expects (B, classes)";
  const std::int64_t batch = logits.dim(0);
  const std::int64_t classes = logits.dim(1);
  CSQ_CHECK(static_cast<std::int64_t>(labels.size()) == batch)
      << "softmax_ce: " << labels.size() << " labels for batch " << batch;

  probabilities_ = Tensor({batch, classes});
  labels_ = labels;
  predictions_.assign(static_cast<std::size_t>(batch), 0);

  const float* in = logits.data();
  float* probs = probabilities_.data();
  double total_loss = 0.0;
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* row = in + b * classes;
    const int label = labels[static_cast<std::size_t>(b)];
    CSQ_CHECK(label >= 0 && label < classes)
        << "softmax_ce: label " << label << " out of range " << classes;

    // Numerically stable log-softmax.
    const std::int64_t best = argmax(row, classes);
    predictions_[static_cast<std::size_t>(b)] = static_cast<int>(best);
    const float max_logit = row[best];
    double denom = 0.0;
    for (std::int64_t j = 0; j < classes; ++j) {
      denom += std::exp(static_cast<double>(row[j] - max_logit));
    }
    const double log_denom = std::log(denom);
    float* prob_row = probs + b * classes;
    for (std::int64_t j = 0; j < classes; ++j) {
      prob_row[j] = static_cast<float>(
          std::exp(static_cast<double>(row[j] - max_logit) - log_denom));
    }
    total_loss -= static_cast<double>(row[label] - max_logit) - log_denom;
  }
  return static_cast<float>(total_loss / static_cast<double>(batch));
}

Tensor SoftmaxCrossEntropy::backward() const {
  CSQ_CHECK(!probabilities_.empty()) << "softmax_ce: backward before forward";
  const std::int64_t batch = probabilities_.dim(0);
  const std::int64_t classes = probabilities_.dim(1);

  Tensor grad = probabilities_;
  float* g = grad.data();
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::int64_t b = 0; b < batch; ++b) {
    g[b * classes + labels_[static_cast<std::size_t>(b)]] -= 1.0f;
    for (std::int64_t j = 0; j < classes; ++j) g[b * classes + j] *= inv_batch;
  }
  return grad;
}

int count_correct(const std::vector<int>& predictions,
                  const std::vector<int>& labels) {
  CSQ_CHECK(predictions.size() == labels.size())
      << "count_correct: size mismatch";
  int correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return correct;
}

}  // namespace csq
