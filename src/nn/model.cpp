#include "nn/model.h"

#include "util/check.h"

namespace csq {

WeightSourceFactory Model::recording_factory(WeightSourceFactory base) {
  CSQ_CHECK(static_cast<bool>(base)) << "recording_factory: null base factory";
  return [this, base = std::move(base)](
             const std::string& name, std::vector<std::int64_t> shape,
             std::int64_t fan_in, Rng& rng) -> WeightSourcePtr {
    WeightSourcePtr source = base(name, std::move(shape), fan_in, rng);
    quant_layers_.push_back(QuantLayer{name, source.get()});
    return source;
  };
}

void Model::set_root(ModulePtr root) {
  CSQ_CHECK(root != nullptr) << "set_root: null module";
  CSQ_CHECK(arena_ == nullptr)
      << "set_root after arena binding would orphan the bound views";
  root_ = std::move(root);
  parameters_.clear();
  parameters_collected_ = false;
}

Module& Model::root() {
  CSQ_CHECK(root_ != nullptr) << "model has no root module";
  return *root_;
}

Tensor Model::forward(const Tensor& input, bool training) {
  return root().forward(input, training);
}

Tensor Model::backward(const Tensor& grad_output) {
  return root().backward(grad_output);
}

const std::vector<Parameter*>& Model::parameters() {
  if (!parameters_collected_) {
    root().collect_parameters(parameters_);
    parameters_collected_ = true;
  }
  return parameters_;
}

void Model::zero_grad() {
  if (arena_ != nullptr) {
    arena_->zero_grads();
    return;
  }
  for (Parameter* param : parameters()) param->zero_grad();
}

ParameterArena& Model::arena() {
  if (arena_ == nullptr) {
    arena_ = std::make_unique<ParameterArena>(parameters());
  }
  return *arena_;
}

std::int64_t Model::total_weight_count() const {
  std::int64_t total = 0;
  for (const QuantLayer& layer : quant_layers_) {
    total += layer.source->weight_count();
  }
  return total;
}

double Model::average_bits() const {
  CSQ_CHECK(!quant_layers_.empty()) << "average_bits: no quant layers";
  double weighted = 0.0;
  double total = 0.0;
  for (const QuantLayer& layer : quant_layers_) {
    const auto count = static_cast<double>(layer.source->weight_count());
    weighted += layer.source->bits_per_weight() * count;
    total += count;
  }
  return weighted / total;
}

double Model::compression_ratio() const { return 32.0 / average_bits(); }

}  // namespace csq
