// Layer interface.
//
// The library uses explicit layer-wise backpropagation rather than a taped
// autograd: every Module implements `forward` (caching whatever it needs) and
// `backward` (consuming the cached state, accumulating parameter gradients
// and returning the input gradient). This keeps the gradient of the CSQ
// weight parameterization (the paper's Eq. 5) a closed-form, inspectable
// function instead of an opaque tape — the property the paper's "fully
// differentiable, no STE" claim rests on.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/tensor.h"

namespace csq {

class GraphLowering;

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // Computes the layer output. When `training` is true the module caches
  // the state needed by the subsequent backward call.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  // Consumes the cached state from the last training-mode forward and
  // returns dLoss/dInput while accumulating parameter gradients.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  // Appends raw pointers to this module's trainable parameters. Pointers
  // stay valid for the module's lifetime (parameters are owned members).
  virtual void collect_parameters(std::vector<Parameter*>& out) { (void)out; }

  // Visits this module and every descendant, depth-first in registration
  // order (the collect_parameters order). Containers override; leaves get
  // the default self-only visit. The data-parallel trainer uses this to
  // pair up stateful modules (batch norms) across model replicas — the
  // deterministic order is what aligns replica k's i-th module with the
  // primary's i-th.
  virtual void for_each_module(const std::function<void(Module&)>& fn) {
    fn(*this);
  }

  // Short type tag ("conv2d", "relu", ...) for debug printouts.
  virtual const char* kind() const = 0;

  // Describes this module to an integer-lowering sink (nn/lowering.h) in
  // execution order. The default implementation throws: a module without an
  // override cannot be lowered into the integer runtime, and the error names
  // it. Containers forward to their children; leaves call the matching
  // GraphLowering hook.
  virtual void lower(GraphLowering& lowering);

  // Dotted instance path assigned by the model builder, e.g.
  // "layer1.0.conv1" — matches the layer naming in the paper's Figure 4.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::string name_;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace csq
