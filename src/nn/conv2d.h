// 2-D convolution lowered to GEMM via im2col.
//
// Input  (B, IC, H, W) -> Output (B, OC, OH, OW).
// The forward pass parallelizes over the batch (each sample runs
// im2col + one serial GEMM); the backward pass parallelizes the input
// gradient over the batch and the weight gradient over output channels so no
// accumulation races occur. im2col matrices are cached per batch during
// training-mode forward.
#pragma once

#include "nn/module.h"
#include "nn/weight_source.h"
#include "tensor/im2col.h"

namespace csq {

struct Conv2dConfig {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t pad = 1;
  bool bias = false;  // ResNet/VGG convs are bias-free (BN follows).
};

class Conv2d final : public Module {
 public:
  Conv2d(const std::string& name, const Conv2dConfig& config,
         const WeightSourceFactory& weight_factory, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  const char* kind() const override { return "conv2d"; }

  WeightSource& source() { return *weight_source_; }
  const Conv2dConfig& config() const { return config_; }

 private:
  ConvGeometry geometry_for(const Tensor& input) const;

  Conv2dConfig config_;
  WeightSourcePtr weight_source_;
  Parameter bias_;  // empty unless config_.bias
  bool has_bias_ = false;

  // Training-mode caches.
  Tensor cached_cols_;        // (B, K, OH*OW) unfolded inputs
  ConvGeometry cached_geom_;  // geometry of the cached batch
  std::int64_t cached_batch_ = 0;
};

}  // namespace csq
