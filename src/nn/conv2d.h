// 2-D convolution lowered to GEMM via im2col.
//
// Input  (B, IC, H, W) -> Output (B, OC, OH, OW).
// The forward pass parallelizes over the batch (each sample runs im2col,
// one serial blocked GEMM and its bias add); the backward pass parallelizes
// the input gradient over the batch and the weight+bias gradients over
// output channels so no accumulation races occur.
//
// Every recurring buffer — the cached im2col matrix, the per-thread
// grad_col stripes and the dW staging tensor — lives in a per-layer
// Workspace with grow-once semantics, so steady-state training steps
// perform zero heap allocations.
#pragma once

#include "nn/module.h"
#include "nn/weight_source.h"
#include "tensor/im2col.h"
#include "tensor/workspace.h"

namespace csq {

struct Conv2dConfig {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t pad = 1;
  bool bias = false;  // ResNet/VGG convs are bias-free (BN follows).
};

class Conv2d final : public Module {
 public:
  Conv2d(const std::string& name, const Conv2dConfig& config,
         const WeightSourceFactory& weight_factory, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  const char* kind() const override { return "conv2d"; }
  void lower(GraphLowering& lowering) override;

  WeightSource& source() { return *weight_source_; }
  const Conv2dConfig& config() const { return config_; }
  // Optional bias as a flat span (nullptr when the layer is bias-free).
  const float* bias_data() const {
    return has_bias_ ? bias_.value.data() : nullptr;
  }
  Workspace& workspace() { return ws_; }

 private:
  // Workspace slot indices.
  enum TensorSlot : int { kColsSlot = 0, kGradWeightSlot = 1 };
  enum FloatSlot : int { kGradColSlot = 0, kEvalColSlot = 1 };

  ConvGeometry geometry_for(const Tensor& input) const;

  Conv2dConfig config_;
  WeightSourcePtr weight_source_;
  Parameter bias_;  // empty unless config_.bias
  bool has_bias_ = false;

  // Per-layer scratch arena; kColsSlot doubles as the training-mode cache
  // of the unfolded inputs (B, K, OH*OW), consumed by backward.
  Workspace ws_;
  ConvGeometry cached_geom_;  // geometry of the cached batch
  std::int64_t cached_batch_ = 0;
};

}  // namespace csq
