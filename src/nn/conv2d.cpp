#include "nn/conv2d.h"

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace csq {

Conv2d::Conv2d(const std::string& name, const Conv2dConfig& config,
               const WeightSourceFactory& weight_factory, Rng& rng)
    : config_(config), has_bias_(config.bias) {
  CSQ_CHECK(config.in_channels > 0 && config.out_channels > 0)
      << "conv2d: bad channel counts";
  set_name(name);
  const std::int64_t fan_in =
      config.in_channels * config.kernel * config.kernel;
  weight_source_ = weight_factory(
      name,
      {config.out_channels, config.in_channels, config.kernel, config.kernel},
      fan_in, rng);
  if (has_bias_) {
    bias_ = Parameter(name + ".bias", Tensor({config.out_channels}),
                      /*apply_weight_decay=*/false);
  }
}

ConvGeometry Conv2d::geometry_for(const Tensor& input) const {
  CSQ_CHECK(input.ndim() == 4) << "conv2d expects (B,C,H,W), got "
                               << input.shape_string();
  CSQ_CHECK(input.dim(1) == config_.in_channels)
      << "conv2d " << name() << ": input channels " << input.dim(1)
      << " != " << config_.in_channels;
  ConvGeometry geom;
  geom.channels = config_.in_channels;
  geom.height = input.dim(2);
  geom.width = input.dim(3);
  geom.kernel_h = config_.kernel;
  geom.kernel_w = config_.kernel;
  geom.stride = config_.stride;
  geom.pad = config_.pad;
  geom.validate();
  return geom;
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  const ConvGeometry geom = geometry_for(input);
  const std::int64_t batch = input.dim(0);
  const std::int64_t col_rows = geom.col_rows();
  const std::int64_t col_cols = geom.col_cols();
  const std::int64_t out_c = config_.out_channels;

  const Tensor& weights = weight_source_->weight(training);

  Tensor output({batch, out_c, geom.out_h(), geom.out_w()});
  // The unfolded inputs are needed again by backward; cache them for the
  // whole batch when training (memory: B * K * OH*OW floats).
  Tensor cols({batch, col_rows, col_cols});

  const std::int64_t in_stride = geom.channels * geom.height * geom.width;
  const std::int64_t out_stride = out_c * col_cols;
  const std::int64_t col_stride = col_rows * col_cols;

  const float* in_data = input.data();
  float* out_data = output.data();
  float* col_data = cols.data();
  const float* w_data = weights.data();

  parallel_for(0, batch, [&](std::int64_t b) {
    float* col = col_data + b * col_stride;
    im2col(geom, in_data + b * in_stride, col);
    // out_b(OC, P) = W(OC, K) * col(K, P)
    gemm(Trans::no, Trans::no, out_c, col_cols, col_rows, 1.0f, w_data,
         col_rows, col, col_cols, 0.0f, out_data + b * out_stride, col_cols);
  });

  if (has_bias_) {
    const float* bias = bias_.value.data();
    for (std::int64_t b = 0; b < batch; ++b) {
      for (std::int64_t oc = 0; oc < out_c; ++oc) {
        float* plane = out_data + b * out_stride + oc * col_cols;
        const float bias_oc = bias[oc];
        for (std::int64_t p = 0; p < col_cols; ++p) plane[p] += bias_oc;
      }
    }
  }

  if (training) {
    cached_cols_ = std::move(cols);
    cached_geom_ = geom;
    cached_batch_ = batch;
  } else {
    cached_cols_ = Tensor();
    cached_batch_ = 0;
  }
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  CSQ_CHECK(cached_batch_ > 0)
      << "conv2d " << name() << ": backward without training forward";
  const ConvGeometry& geom = cached_geom_;
  const std::int64_t batch = cached_batch_;
  const std::int64_t col_rows = geom.col_rows();
  const std::int64_t col_cols = geom.col_cols();
  const std::int64_t out_c = config_.out_channels;

  CSQ_CHECK(grad_output.ndim() == 4 && grad_output.dim(0) == batch &&
            grad_output.dim(1) == out_c &&
            grad_output.dim(2) == geom.out_h() &&
            grad_output.dim(3) == geom.out_w())
      << "conv2d " << name() << ": grad_output shape "
      << grad_output.shape_string() << " mismatch";

  const Tensor& weights = weight_source_->weight(/*training=*/true);
  const float* w_data = weights.data();
  const float* go_data = grad_output.data();
  const float* col_data = cached_cols_.data();

  const std::int64_t out_stride = out_c * col_cols;
  const std::int64_t col_stride = col_rows * col_cols;
  const std::int64_t in_stride = geom.channels * geom.height * geom.width;

  // ---- input gradient: batch-parallel col2im(W^T * dOut_b) -------------
  Tensor grad_input({batch, geom.channels, geom.height, geom.width});
  float* gi_data = grad_input.data();
  parallel_for(0, batch, [&](std::int64_t b) {
    std::vector<float> grad_col(
        static_cast<std::size_t>(col_rows * col_cols));
    // grad_col(K, P) = W^T(K, OC) * dOut_b(OC, P); A = W stored (OC, K).
    gemm(Trans::yes, Trans::no, col_rows, col_cols, out_c, 1.0f, w_data,
         col_rows, go_data + b * out_stride, col_cols, 0.0f, grad_col.data(),
         col_cols);
    col2im(geom, grad_col.data(), gi_data + b * in_stride);
  });

  // ---- weight gradient: OC-parallel sum_b dOut_b * col_b^T ------------
  Tensor grad_weight(weights.shape());
  float* gw_data = grad_weight.data();
  parallel_for_chunked(0, out_c, [&](std::int64_t oc_begin,
                                     std::int64_t oc_end) {
    const std::int64_t rows = oc_end - oc_begin;
    for (std::int64_t b = 0; b < batch; ++b) {
      // gW[oc,:] += dot(dOut_b[oc,:], col_b[k,:]) — NT over the row block.
      gemm(Trans::no, Trans::yes, rows, col_rows, col_cols, 1.0f,
           go_data + b * out_stride + oc_begin * col_cols, col_cols,
           col_data + b * col_stride, col_cols, b == 0 ? 0.0f : 1.0f,
           gw_data + oc_begin * col_rows, col_rows);
    }
  });
  weight_source_->backward(grad_weight);

  if (has_bias_) {
    float* gb = bias_.grad.data();
    for (std::int64_t b = 0; b < batch; ++b) {
      for (std::int64_t oc = 0; oc < out_c; ++oc) {
        const float* plane = go_data + b * out_stride + oc * col_cols;
        float acc = 0.0f;
        for (std::int64_t p = 0; p < col_cols; ++p) acc += plane[p];
        gb[oc] += acc;
      }
    }
  }

  cached_cols_ = Tensor();
  cached_batch_ = 0;
  return grad_input;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  weight_source_->collect_parameters(out);
  if (has_bias_) out.push_back(&bias_);
}

}  // namespace csq
