#include "nn/conv2d.h"

#include "nn/lowering.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace csq {

Conv2d::Conv2d(const std::string& name, const Conv2dConfig& config,
               const WeightSourceFactory& weight_factory, Rng& rng)
    : config_(config), has_bias_(config.bias) {
  CSQ_CHECK(config.in_channels > 0 && config.out_channels > 0)
      << "conv2d: bad channel counts";
  set_name(name);
  const std::int64_t fan_in =
      config.in_channels * config.kernel * config.kernel;
  weight_source_ = weight_factory(
      name,
      {config.out_channels, config.in_channels, config.kernel, config.kernel},
      fan_in, rng);
  if (has_bias_) {
    bias_ = Parameter(name + ".bias", Tensor({config.out_channels}),
                      /*apply_weight_decay=*/false);
  }
}

ConvGeometry Conv2d::geometry_for(const Tensor& input) const {
  CSQ_CHECK(input.ndim() == 4) << "conv2d expects (B,C,H,W), got "
                               << input.shape_string();
  CSQ_CHECK(input.dim(1) == config_.in_channels)
      << "conv2d " << name() << ": input channels " << input.dim(1)
      << " != " << config_.in_channels;
  ConvGeometry geom;
  geom.channels = config_.in_channels;
  geom.height = input.dim(2);
  geom.width = input.dim(3);
  geom.kernel_h = config_.kernel;
  geom.kernel_w = config_.kernel;
  geom.stride = config_.stride;
  geom.pad = config_.pad;
  geom.validate();
  return geom;
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  const ConvGeometry geom = geometry_for(input);
  const std::int64_t batch = input.dim(0);
  const std::int64_t col_rows = geom.col_rows();
  const std::int64_t col_cols = geom.col_cols();
  const std::int64_t out_c = config_.out_channels;

  const Tensor& weights = weight_source_->weight(training);

  // Fully overwritten below (im2col + beta=0 GEMM + bias add).
  Tensor output =
      Tensor::uninitialized({batch, out_c, geom.out_h(), geom.out_w()});
  // Training caches the whole unfolded batch for backward (memory:
  // B * K * OH*OW floats, recycled across steps). Eval never reads the
  // columns back, so it uses small per-thread stripes instead of pinning a
  // batch-sized buffer in the grow-once arena (think batch-256 validation
  // passes between batch-8 training steps).
  float* col_data = training
                        ? ws_.tensor(kColsSlot, {batch, col_rows, col_cols})
                              .data()
                        : ws_.floats(kEvalColSlot,
                                     pool_slot_count() * col_rows * col_cols);

  struct ForwardContext {
    ConvGeometry geom;
    const float* in_data;
    float* out_data;
    float* col_data;
    const float* w_data;
    const float* bias;  // null when the layer has no bias
    std::int64_t in_stride, out_stride, col_stride;
    std::int64_t out_c, col_rows, col_cols;
    bool batch_cols;  // col_data indexed by sample (true) or pool slot
  } ctx;
  ctx.geom = geom;
  ctx.in_data = input.data();
  ctx.out_data = output.data();
  ctx.col_data = col_data;
  ctx.w_data = weights.data();
  ctx.bias = has_bias_ ? bias_.value.data() : nullptr;
  ctx.in_stride = geom.channels * geom.height * geom.width;
  ctx.out_stride = out_c * col_cols;
  ctx.col_stride = col_rows * col_cols;
  ctx.out_c = out_c;
  ctx.col_rows = col_rows;
  ctx.col_cols = col_cols;
  ctx.batch_cols = training;

  // Single-reference capture keeps the closure inside std::function's
  // small-buffer optimization (no allocation per dispatch). The bias add is
  // folded into the batch-parallel region instead of a serial post-pass.
  parallel_for(0, batch, [&ctx](std::int64_t b) {
    float* col =
        ctx.col_data +
        (ctx.batch_cols ? b : pool_slot()) * ctx.col_stride;
    im2col(ctx.geom, ctx.in_data + b * ctx.in_stride, col);
    float* out_b = ctx.out_data + b * ctx.out_stride;
    // out_b(OC, P) = W(OC, K) * col(K, P)
    gemm(Trans::no, Trans::no, ctx.out_c, ctx.col_cols, ctx.col_rows, 1.0f,
         ctx.w_data, ctx.col_rows, col, ctx.col_cols, 0.0f, out_b,
         ctx.col_cols);
    if (ctx.bias != nullptr) {
      for (std::int64_t oc = 0; oc < ctx.out_c; ++oc) {
        float* plane = out_b + oc * ctx.col_cols;
        const float bias_oc = ctx.bias[oc];
        for (std::int64_t p = 0; p < ctx.col_cols; ++p) plane[p] += bias_oc;
      }
    }
  });

  if (training) {
    cached_geom_ = geom;
    cached_batch_ = batch;
  } else {
    cached_batch_ = 0;
  }
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  CSQ_CHECK(cached_batch_ > 0)
      << "conv2d " << name() << ": backward without training forward";
  const ConvGeometry geom = cached_geom_;
  const std::int64_t batch = cached_batch_;
  const std::int64_t col_rows = geom.col_rows();
  const std::int64_t col_cols = geom.col_cols();
  const std::int64_t out_c = config_.out_channels;

  CSQ_CHECK(grad_output.ndim() == 4 && grad_output.dim(0) == batch &&
            grad_output.dim(1) == out_c &&
            grad_output.dim(2) == geom.out_h() &&
            grad_output.dim(3) == geom.out_w())
      << "conv2d " << name() << ": grad_output shape "
      << grad_output.shape_string() << " mismatch";

  const Tensor& weights = weight_source_->weight(/*training=*/true);
  const Tensor& cols = ws_.peek(kColsSlot);

  // ---- input gradient: batch-parallel col2im(W^T * dOut_b) -------------
  // Zero-filled construction: col2im scatter-adds into its sample slice.
  Tensor grad_input({batch, geom.channels, geom.height, geom.width});

  struct InputGradContext {
    ConvGeometry geom;
    const float* w_data;
    const float* go_data;
    float* gi_data;
    float* grad_col_base;  // pool_slot_count() stripes of col_stride floats
    std::int64_t out_stride, col_stride, in_stride;
    std::int64_t out_c, col_rows, col_cols;
  } ictx;
  ictx.geom = geom;
  ictx.w_data = weights.data();
  ictx.go_data = grad_output.data();
  ictx.gi_data = grad_input.data();
  ictx.grad_col_base =
      ws_.floats(kGradColSlot, pool_slot_count() * col_rows * col_cols);
  ictx.out_stride = out_c * col_cols;
  ictx.col_stride = col_rows * col_cols;
  ictx.in_stride = geom.channels * geom.height * geom.width;
  ictx.out_c = out_c;
  ictx.col_rows = col_rows;
  ictx.col_cols = col_cols;

  parallel_for(0, batch, [&ictx](std::int64_t b) {
    float* grad_col = ictx.grad_col_base + pool_slot() * ictx.col_stride;
    // grad_col(K, P) = W^T(K, OC) * dOut_b(OC, P); A = W stored (OC, K).
    gemm(Trans::yes, Trans::no, ictx.col_rows, ictx.col_cols, ictx.out_c,
         1.0f, ictx.w_data, ictx.col_rows, ictx.go_data + b * ictx.out_stride,
         ictx.col_cols, 0.0f, grad_col, ictx.col_cols);
    col2im(ictx.geom, grad_col, ictx.gi_data + b * ictx.in_stride);
  });

  // ---- weight + bias gradients: OC-parallel over disjoint row blocks ----
  Tensor& grad_weight = ws_.tensor(kGradWeightSlot, weights.shape());

  struct WeightGradContext {
    const float* go_data;
    const float* col_data;
    float* gw_data;
    float* gb_data;  // null when the layer has no bias
    std::int64_t batch, out_stride, col_stride;
    std::int64_t col_rows, col_cols;
  } wctx;
  wctx.go_data = grad_output.data();
  wctx.col_data = cols.data();
  wctx.gw_data = grad_weight.data();
  wctx.gb_data = has_bias_ ? bias_.grad.data() : nullptr;
  wctx.batch = batch;
  wctx.out_stride = out_c * col_cols;
  wctx.col_stride = col_rows * col_cols;
  wctx.col_rows = col_rows;
  wctx.col_cols = col_cols;

  parallel_for_chunked(0, out_c, [&wctx](std::int64_t oc_begin,
                                         std::int64_t oc_end) {
    const std::int64_t rows = oc_end - oc_begin;
    for (std::int64_t b = 0; b < wctx.batch; ++b) {
      // gW[oc,:] += dot(dOut_b[oc,:], col_b[k,:]) — NT over the row block.
      gemm(Trans::no, Trans::yes, rows, wctx.col_rows, wctx.col_cols, 1.0f,
           wctx.go_data + b * wctx.out_stride + oc_begin * wctx.col_cols,
           wctx.col_cols, wctx.col_data + b * wctx.col_stride, wctx.col_cols,
           b == 0 ? 0.0f : 1.0f, wctx.gw_data + oc_begin * wctx.col_rows,
           wctx.col_rows);
    }
    if (wctx.gb_data != nullptr) {
      // Bias gradient folded into the same disjoint OC ownership: each
      // channel sums its dOut plane over the batch in a fixed order, so
      // pooled and serial execution agree.
      for (std::int64_t oc = oc_begin; oc < oc_end; ++oc) {
        float acc = 0.0f;
        for (std::int64_t b = 0; b < wctx.batch; ++b) {
          const float* plane =
              wctx.go_data + b * wctx.out_stride + oc * wctx.col_cols;
          for (std::int64_t p = 0; p < wctx.col_cols; ++p) acc += plane[p];
        }
        wctx.gb_data[oc] += acc;
      }
    }
  });
  weight_source_->backward(grad_weight);

  cached_batch_ = 0;
  return grad_input;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  weight_source_->collect_parameters(out);
  if (has_bias_) out.push_back(&bias_);
}

void Conv2d::lower(GraphLowering& lowering) { lowering.lower_conv2d(*this); }

}  // namespace csq
