// Softmax cross-entropy loss with integer class labels.
//
// Not a Module: the loss consumes logits and labels and produces the scalar
// loss plus the logits gradient, which seeds the network backward pass.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace csq {

class SoftmaxCrossEntropy {
 public:
  // Returns the mean loss over the batch. Caches softmax probabilities.
  float forward(const Tensor& logits, const std::vector<int>& labels);

  // Gradient of the mean loss w.r.t. the logits: (softmax - onehot) / B.
  Tensor backward() const;

  // Top-1 predictions of the last forward.
  const std::vector<int>& predictions() const { return predictions_; }

 private:
  Tensor probabilities_;
  std::vector<int> labels_;
  std::vector<int> predictions_;
};

// Counts label matches (top-1) between predictions and labels.
int count_correct(const std::vector<int>& predictions,
                  const std::vector<int>& labels);

}  // namespace csq
