// End-to-end coverage of the bench harness method runners: every row type
// used by the table benches (FP / STE / DoReFa / PACT / LQ-Nets / BSQ /
// CSQ / PTQ) must train, report a sane accuracy and the correct
// compression accounting, at miniature scale.
#include <gtest/gtest.h>

#include "../bench/harness.h"

namespace csq::bench {
namespace {

struct Fixture {
  SyntheticDataset data;
  RunConfig config;
};

Fixture make_fixture() {
  Fixture fixture;
  SyntheticConfig data_config;
  data_config.num_classes = 4;
  data_config.train_samples = 96;
  data_config.test_samples = 48;
  data_config.height = 8;
  data_config.width = 8;
  data_config.noise_stddev = 0.4f;
  data_config.seed = 40;
  fixture.data = make_synthetic(data_config);

  fixture.config.arch = Arch::resnet20;
  fixture.config.epochs = 3;
  fixture.config.base_width = 4;
  fixture.config.num_classes = 4;
  fixture.config.batch_size = 32;
  return fixture;
}

void expect_sane(const Row& row, double expected_compression) {
  EXPECT_GE(row.accuracy, 0.0);
  EXPECT_LE(row.accuracy, 100.0);
  EXPECT_NEAR(row.compression, expected_compression,
              expected_compression * 0.75);
  EXPECT_GT(row.seconds, 0.0);
}

TEST(BenchHarness, FpRow) {
  Fixture fixture = make_fixture();
  const Row row = run_fp(fixture.config, fixture.data);
  EXPECT_EQ(row.method, "FP");
  EXPECT_EQ(row.w_bits, "32");
  expect_sane(row, 1.0);
}

TEST(BenchHarness, SteRow) {
  Fixture fixture = make_fixture();
  const Row row = run_ste_uniform(fixture.config, fixture.data, 4);
  expect_sane(row, 8.0);
}

TEST(BenchHarness, DorefaRowWithActQuant) {
  Fixture fixture = make_fixture();
  fixture.config.act_bits = 3;
  const Row row = run_dorefa(fixture.config, fixture.data, 3);
  expect_sane(row, 32.0 / 3.0);
}

TEST(BenchHarness, PactRow) {
  Fixture fixture = make_fixture();
  fixture.config.act_bits = 2;
  const Row row = run_pact(fixture.config, fixture.data, 2);
  expect_sane(row, 16.0);
}

TEST(BenchHarness, LqnetsRow) {
  Fixture fixture = make_fixture();
  const Row row = run_lqnets(fixture.config, fixture.data, 2);
  expect_sane(row, 16.0);
}

TEST(BenchHarness, BsqRowReportsMixedPrecision) {
  Fixture fixture = make_fixture();
  BsqOptions options;
  options.prune_every = 1;
  options.prune_threshold = 0.02f;
  const Row row = run_bsq(fixture.config, fixture.data, options);
  EXPECT_EQ(row.w_bits, "MP");
  EXPECT_GE(row.compression, 4.0);  // pruning moved below 8 bits
}

TEST(BenchHarness, CsqRowWithResult) {
  Fixture fixture = make_fixture();
  CsqRunOptions options;
  options.target_bits = 4.0;
  options.lambda = 0.05;
  CsqTrainResult result;
  const Row row = run_csq(fixture.config, fixture.data, options, &result);
  EXPECT_EQ(row.method, "CSQ T4");
  EXPECT_EQ(row.w_bits, "MP");
  EXPECT_EQ(result.precision_trajectory.size(), 3u);
  EXPECT_NEAR(row.compression, 32.0 / result.average_bits, 1e-9);
}

TEST(BenchHarness, CsqUniformRow) {
  Fixture fixture = make_fixture();
  CsqRunOptions options;
  options.fixed_precision = 3;
  const Row row = run_csq(fixture.config, fixture.data, options);
  EXPECT_EQ(row.method, "CSQ-Uniform");
  EXPECT_NEAR(row.compression, 32.0 / 3.0, 1e-6);
}

TEST(BenchHarness, PtqRows) {
  Fixture fixture = make_fixture();
  const Row max_row = run_ptq(fixture.config, fixture.data, 4, false);
  const Row pct_row = run_ptq(fixture.config, fixture.data, 4, true);
  EXPECT_NEAR(max_row.compression, 8.0, 1e-9);
  EXPECT_NE(max_row.method, pct_row.method);
}

TEST(BenchHarness, TableFormatting) {
  TextTable table = make_paper_table("t");
  Row row;
  row.method = "FP";
  row.w_bits = "32";
  row.compression = 1.0;
  row.accuracy = 91.234;
  row.paper_accuracy = 92.62;
  add_row(table, "32", row);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("91.23"), std::string::npos);
  EXPECT_NE(text.find("92.62"), std::string::npos);
}

TEST(BenchHarness, ScalePresetsAreOrdered) {
  // smoke <= default <= full on every workload axis.
  const Scale normal;  // default member values
  Scale smoke = normal, full = normal;
  smoke.cifar_train = 300;
  EXPECT_LE(smoke.cifar_train, normal.cifar_train);
  full.cifar_train = 1600;
  EXPECT_GE(full.cifar_train, normal.cifar_train);
}

TEST(BenchHarness, BuildModelDispatchesAllArchs) {
  Fixture fixture = make_fixture();
  Rng rng(41);
  for (const Arch arch :
       {Arch::resnet20, Arch::vgg19bn, Arch::resnet18, Arch::resnet50}) {
    fixture.config.arch = arch;
    Model model =
        build_model(fixture.config, dense_weight_factory(), nullptr, rng);
    EXPECT_GT(model.quant_layers().size(), 10u) << arch_name(arch);
  }
}

}  // namespace
}  // namespace csq::bench
