// Global allocation probe shared by the steady-state regression suites
// (hotpath_test.cpp, serve_test.cpp). alloc_probe.cpp replaces the global
// operator new/delete for the WHOLE test binary with counting versions, so
// a zero-delta window proves a code path performed no heap allocation at
// all — a stray std::function closure, vector growth or fresh Tensor
// buffer fails the assertion.
#pragma once

#include <cstdint>

namespace csq {
namespace testing {

// Number of operator-new calls since process start (relaxed reads: windows
// are delimited on one thread while the probed path runs).
std::uint64_t alloc_count();

}  // namespace testing
}  // namespace csq
