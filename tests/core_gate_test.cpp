// Tests for src/core/gate: temperature sigmoid properties and the
// exponential temperature schedule (paper Eq. 2 and Algorithm 1).
#include <cmath>

#include <gtest/gtest.h>

#include "core/gate.h"
#include "test_helpers.h"
#include "util/check.h"

namespace csq {
namespace {

using testing::expect_close;
using testing::numeric_derivative;

TEST(Gate, RangeIsUnitInterval) {
  for (float beta : {0.5f, 1.0f, 10.0f, 200.0f}) {
    for (float x : {-5.0f, -0.3f, 0.0f, 0.7f, 4.0f}) {
      const float g = gate(x, beta);
      EXPECT_GE(g, 0.0f);
      EXPECT_LE(g, 1.0f);
      // Strictly inside (0,1) while beta*x is below float saturation;
      // beyond |beta*x| ~ 17, exp(-|beta*x|) drops under the float ulp at
      // 1 and the gate legitimately reaches the exact 0/1 limit values.
      if (std::fabs(beta * x) < 15.0f) {
        EXPECT_GT(g, 0.0f);
        EXPECT_LT(g, 1.0f);
      }
    }
  }
}

TEST(Gate, MonotoneIncreasingInX) {
  float previous = 0.0f;
  for (float x = -4.0f; x <= 4.0f; x += 0.25f) {
    const float g = gate(x, 3.0f);
    EXPECT_GT(g, previous);
    previous = g;
  }
}

TEST(Gate, SymmetricAroundZero) {
  for (float x : {0.1f, 0.5f, 2.0f}) {
    EXPECT_NEAR(gate(x, 2.0f) + gate(-x, 2.0f), 1.0f, 1e-6f);
  }
  EXPECT_FLOAT_EQ(gate(0.0f, 123.0f), 0.5f);
}

class GateBetaTest : public ::testing::TestWithParam<float> {};

TEST_P(GateBetaTest, DerivativeMatchesNumeric) {
  const float beta = GetParam();
  for (float x : {-1.5f, -0.2f, 0.0f, 0.4f, 1.1f}) {
    // Keep beta*x small enough that the finite difference is stable.
    if (std::fabs(beta * x) > 12.0f) continue;
    const double numeric = numeric_derivative(
        [beta](float v) { return static_cast<double>(gate(v, beta)); }, x,
        1e-3f);
    expect_close(gate_derivative(x, beta), numeric, 2e-2, 1e-5);
  }
}

TEST_P(GateBetaTest, DerivativeFromValueIsConsistent) {
  const float beta = GetParam();
  for (float x : {-0.8f, 0.0f, 0.6f}) {
    EXPECT_FLOAT_EQ(gate_derivative(x, beta),
                    gate_derivative_from_value(gate(x, beta), beta));
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, GateBetaTest,
                         ::testing::Values(0.5f, 1.0f, 2.0f, 5.0f, 10.0f));

TEST(Gate, ConvergesToUnitStepAsBetaGrows) {
  // The continuous-sparsification property: f_beta -> I(x >= 0).
  for (float x : {-0.5f, -0.05f, 0.05f, 0.5f}) {
    const float g = gate(x, 200.0f * 10.0f);
    EXPECT_NEAR(g, hard_gate(x), 1e-4f);
  }
}

TEST(Gate, HardGateIsTheIndicator) {
  EXPECT_FLOAT_EQ(hard_gate(-1e-6f), 0.0f);
  EXPECT_FLOAT_EQ(hard_gate(0.0f), 1.0f);
  EXPECT_FLOAT_EQ(hard_gate(3.0f), 1.0f);
}

TEST(TemperatureSchedule, EndpointsMatchAlgorithmOne) {
  const TemperatureSchedule schedule(1.0f, 200.0f, 100);
  EXPECT_FLOAT_EQ(schedule.at_epoch(0), 1.0f);
  EXPECT_FLOAT_EQ(schedule.at_epoch(99), 200.0f);
  EXPECT_NEAR(schedule.at_epoch(50), std::pow(200.0f, 50.0f / 99.0f), 0.5f);
}

TEST(TemperatureSchedule, GrowsMonotonically) {
  const TemperatureSchedule schedule(1.0f, 200.0f, 60);
  float previous = 0.0f;
  for (int epoch = 0; epoch < 60; ++epoch) {
    const float beta = schedule.at_epoch(epoch);
    EXPECT_GT(beta, previous);
    previous = beta;
  }
}

TEST(TemperatureSchedule, GrowthIsExponentialNotLinear) {
  const TemperatureSchedule schedule(1.0f, 256.0f, 9);
  // Equal epoch steps multiply beta by the same factor.
  const float r1 = schedule.at_epoch(2) / schedule.at_epoch(1);
  const float r2 = schedule.at_epoch(6) / schedule.at_epoch(5);
  EXPECT_NEAR(r1, r2, 1e-3f);
  EXPECT_GT(r1, 1.5f);
}

TEST(TemperatureSchedule, SingleEpochJumpsToMax) {
  const TemperatureSchedule schedule(1.0f, 200.0f, 1);
  EXPECT_FLOAT_EQ(schedule.at_epoch(0), 200.0f);
}

TEST(TemperatureSchedule, RejectsBadParameters) {
  EXPECT_THROW(TemperatureSchedule(0.0f, 200.0f, 10), check_error);
  EXPECT_THROW(TemperatureSchedule(1.0f, 0.5f, 10), check_error);
  EXPECT_THROW(TemperatureSchedule(1.0f, 200.0f, 0), check_error);
}

}  // namespace
}  // namespace csq
