// Shared helpers for the csq test suite: numeric gradient checking against
// the layers' analytic backward passes, and small tensor factories.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace csq::testing {

// Fills a tensor with reproducible uniform values in [lo, hi].
inline Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng,
                            float lo = -1.0f, float hi = 1.0f) {
  Tensor tensor(std::move(shape));
  float* data = tensor.data();
  for (std::int64_t i = 0; i < tensor.numel(); ++i) {
    data[i] = rng.uniform(lo, hi);
  }
  return tensor;
}

// Scalar probe loss L = sum_i out_i * probe_i. Its gradient w.r.t. the
// output is exactly `probe`, which seeds every gradcheck below.
inline float probe_loss(const Tensor& output, const Tensor& probe) {
  EXPECT_TRUE(output.same_shape(probe));
  double acc = 0.0;
  for (std::int64_t i = 0; i < output.numel(); ++i) {
    acc += static_cast<double>(output[i]) * probe[i];
  }
  return static_cast<float>(acc);
}

// Central-difference derivative of f at x.
inline double numeric_derivative(const std::function<double(float)>& f,
                                 float x, float eps = 1e-3f) {
  return (f(x + eps) - f(x - eps)) / (2.0 * static_cast<double>(eps));
}

// Checks |a - b| <= atol + rtol * max(|a|, |b|).
inline void expect_close(double a, double b, double rtol = 5e-2,
                         double atol = 1e-4) {
  const double tolerance = atol + rtol * std::max(std::fabs(a), std::fabs(b));
  EXPECT_NEAR(a, b, tolerance) << "values " << a << " vs " << b;
}

// Gradcheck for a module's input gradient: compares analytic backward
// against central differences on a probe loss, at `samples` random input
// coordinates.
inline void check_input_gradient(Module& module, Tensor input, Rng& rng,
                                 int samples = 6, double rtol = 5e-2) {
  Tensor base_out = module.forward(input, /*training=*/true);
  Tensor probe = random_tensor(base_out.shape(), rng);
  Tensor grad_in = module.backward(probe);
  ASSERT_TRUE(grad_in.same_shape(input));

  for (int check = 0; check < samples; ++check) {
    const std::int64_t index =
        static_cast<std::int64_t>(rng.uniform_int(
            static_cast<std::uint32_t>(input.numel())));
    const float original = input[index];
    // Training-mode forward in the probes: layers such as BatchNorm compute
    // different (batch-statistic) functions in training mode, and the
    // analytic gradient under test is the training-mode one.
    const double numeric = numeric_derivative(
        [&](float x) {
          input[index] = x;
          Tensor out = module.forward(input, /*training=*/true);
          return static_cast<double>(probe_loss(out, probe));
        },
        original);
    input[index] = original;
    expect_close(grad_in[index], numeric, rtol, 2e-3);
  }
}

// Gradcheck for a module's parameter gradients: for each parameter, probes
// up to `samples` random coordinates.
inline void check_parameter_gradients(Module& module, const Tensor& input,
                                      Rng& rng, int samples = 4,
                                      double rtol = 5e-2) {
  std::vector<Parameter*> params;
  module.collect_parameters(params);
  ASSERT_FALSE(params.empty());

  Tensor base_out = module.forward(input, /*training=*/true);
  Tensor probe = random_tensor(base_out.shape(), rng);
  for (Parameter* param : params) param->zero_grad();
  module.forward(input, /*training=*/true);  // rebuild caches post-zero
  module.backward(probe);

  for (Parameter* param : params) {
    for (int check = 0; check < samples; ++check) {
      const std::int64_t index = static_cast<std::int64_t>(rng.uniform_int(
          static_cast<std::uint32_t>(param->value.numel())));
      const float original = param->value[index];
      const double numeric = numeric_derivative(
          [&](float x) {
            param->value[index] = x;
            param->mark_updated();  // direct-mutation contract
            Tensor out = module.forward(input, /*training=*/true);
            return static_cast<double>(probe_loss(out, probe));
          },
          original);
      param->value[index] = original;
      param->mark_updated();
      SCOPED_TRACE(param->name + " index " + std::to_string(index));
      expect_close(param->grad[index], numeric, rtol, 2e-3);
    }
  }
}

}  // namespace csq::testing
