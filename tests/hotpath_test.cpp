// Hot-path regression tests for the blocked-GEMM / workspace rework:
//
//  * steady-state Conv2d / Linear forward+backward (+ SGD step) performs
//    ZERO heap allocations — asserted with a real global operator-new
//    counter, backed up by the tensor-pool and workspace growth counters;
//  * the eval-mode dirty flag on the weight sources skips re-materializing
//    unchanged weights and invalidates on set_beta / freeze_mask /
//    optimizer steps;
//  * Workspace slot semantics (grow-once, reference stability, bounds).
#include <gtest/gtest.h>

#include "alloc_probe.h"
#include "core/csq_weight.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models.h"
#include "nn/weight_source.h"
#include "opt/sgd.h"
#include "quant/bsq_weight.h"
#include "quant/dorefa_weight.h"
#include "quant/lqnets_weight.h"
#include "quant/ste_uniform_weight.h"
#include "runtime/compiled_graph.h"
#include "tensor/workspace.h"
#include "test_helpers.h"
#include "util/check.h"

// The global operator-new counter lives in alloc_probe.cpp (shared with the
// serving-layer steady-state assertions in serve_test.cpp). The windows
// below assert a delta of ZERO, so any heap traffic on the hot path — a
// stray std::function closure, a vector growth, a fresh Tensor buffer —
// fails the suite.

namespace csq {
namespace {

using testing::alloc_count;
using testing::random_tensor;

// Runs `steps` training steps of layer+optimizer and returns the number of
// heap allocations the steady-state window performed.
template <typename Layer>
std::uint64_t steady_state_allocations(Layer& layer, Sgd& sgd,
                                       const Tensor& input,
                                       const Tensor& grad_output,
                                       std::vector<Parameter*>& params,
                                       int warmup = 3, int steps = 5) {
  for (int i = 0; i < warmup; ++i) {
    for (Parameter* p : params) p->zero_grad();
    Tensor out = layer.forward(input, /*training=*/true);
    Tensor grad_in = layer.backward(grad_output);
    sgd.step();
  }
  const std::uint64_t pool_allocs_before = tensor_pool_stats().data_allocations;
  const std::uint64_t ws_growth_before = layer.workspace().growth_count();
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < steps; ++i) {
    for (Parameter* p : params) p->zero_grad();
    Tensor out = layer.forward(input, /*training=*/true);
    Tensor grad_in = layer.backward(grad_output);
    sgd.step();
  }
  const std::uint64_t delta = alloc_count() - before;
  EXPECT_EQ(tensor_pool_stats().data_allocations, pool_allocs_before)
      << "steady state hit the heap for tensor storage";
  EXPECT_EQ(layer.workspace().growth_count(), ws_growth_before)
      << "steady state grew the layer workspace";
  return delta;
}

TEST(AllocationRegression, Conv2dCsqSteadyStateIsAllocationFree) {
  Rng rng(301);
  std::vector<CsqWeightSource*> registry;
  Conv2dConfig config;
  config.in_channels = 8;
  config.out_channels = 8;
  Conv2d conv("conv", config, csq_weight_factory(&registry), rng);
  registry.front()->set_beta(4.0f);

  Tensor input = random_tensor({4, 8, 8, 8}, rng);
  Tensor grad_output = random_tensor({4, 8, 8, 8}, rng);
  std::vector<Parameter*> params;
  conv.collect_parameters(params);
  Sgd sgd(params, {});

  EXPECT_EQ(steady_state_allocations(conv, sgd, input, grad_output, params),
            0u);
}

TEST(AllocationRegression, Conv2dDenseWithBiasSteadyStateIsAllocationFree) {
  Rng rng(302);
  Conv2dConfig config;
  config.in_channels = 6;
  config.out_channels = 10;
  config.bias = true;
  Conv2d conv("conv", config, dense_weight_factory(), rng);

  Tensor input = random_tensor({5, 6, 9, 9}, rng);
  Tensor grad_output = random_tensor({5, 10, 9, 9}, rng);
  std::vector<Parameter*> params;
  conv.collect_parameters(params);
  Sgd sgd(params, {});

  EXPECT_EQ(steady_state_allocations(conv, sgd, input, grad_output, params),
            0u);
}

TEST(AllocationRegression, LinearSteadyStateIsAllocationFree) {
  Rng rng(303);
  Linear linear("fc", 64, 32, dense_weight_factory(), rng, /*bias=*/true);

  Tensor input = random_tensor({16, 64}, rng);
  Tensor grad_output = random_tensor({16, 32}, rng);
  std::vector<Parameter*> params;
  linear.collect_parameters(params);
  Sgd sgd(params, {});

  EXPECT_EQ(steady_state_allocations(linear, sgd, input, grad_output, params),
            0u);
}

TEST(AllocationRegression, EvalForwardIsAllocationFreeAndSkipsMaterialize) {
  Rng rng(304);
  std::vector<CsqWeightSource*> registry;
  Conv2dConfig config;
  config.in_channels = 8;
  config.out_channels = 8;
  Conv2d conv("conv", config, csq_weight_factory(&registry), rng);
  Tensor input = random_tensor({2, 8, 8, 8}, rng);

  for (int i = 0; i < 3; ++i) {
    Tensor out = conv.forward(input, /*training=*/false);
  }
  const std::uint64_t materialized = registry.front()->materialize_count();
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 5; ++i) {
    Tensor out = conv.forward(input, /*training=*/false);
  }
  EXPECT_EQ(alloc_count() - before, 0u);
  // Weights unchanged between the eval forwards: the dirty flag short
  // circuits every re-materialization.
  EXPECT_EQ(registry.front()->materialize_count(), materialized);
}

TEST(AllocationRegression, CompiledGraphBatchedForwardIsAllocationFree) {
  // The serving path: a finalized ResNet-20 lowered into the int8 compiled
  // graph. After warmup, a steady-state batched forward must not touch the
  // heap — activation edges, im2col stripes and GEMM packing scratch all
  // come from grow-once storage.
  Rng rng(320);
  std::vector<CsqWeightSource*> registry;
  ModelConfig model_config;
  model_config.base_width = 4;
  Model model = make_resnet20(model_config, csq_weight_factory(&registry),
                              nullptr, rng);
  for (CsqWeightSource* source : registry) source->finalize();

  runtime::LowerOptions options;
  options.in_height = 12;
  options.in_width = 12;
  runtime::CompiledGraph graph = runtime::lower(model, options);
  Tensor images = random_tensor({4, 3, 12, 12}, rng);
  graph.calibrate(images);
  graph.prepare(4);
  for (int i = 0; i < 3; ++i) {
    Tensor logits = graph.forward(images);
  }

  const std::uint64_t pool_allocs_before = tensor_pool_stats().data_allocations;
  const std::uint64_t growth_before = graph.buffer_growth_count();
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 5; ++i) {
    Tensor logits = graph.forward(images);
  }
  EXPECT_EQ(alloc_count() - before, 0u)
      << "steady-state int8 forward hit the heap";
  EXPECT_EQ(tensor_pool_stats().data_allocations, pool_allocs_before);
  EXPECT_EQ(graph.buffer_growth_count(), growth_before)
      << "steady-state int8 forward grew the graph workspace";
}

// -------------------------------------------------------- dirty flag ----

TEST(EvalDirtyFlag, CsqInvalidatesOnBetaMaskAndOptimizerStep) {
  Rng rng(310);
  CsqWeightOptions options;
  CsqWeightSource source("w", {6, 6}, 6, options, rng);
  source.set_beta(2.0f);

  source.weight(/*training=*/false);
  const std::uint64_t base = source.materialize_count();
  source.weight(false);
  source.weight(false);
  EXPECT_EQ(source.materialize_count(), base) << "unchanged eval re-ran";

  // set_beta with a new temperature invalidates...
  source.set_beta(3.0f);
  source.weight(false);
  EXPECT_EQ(source.materialize_count(), base + 1);
  // ...but a redundant set_beta does not.
  source.set_beta(3.0f);
  source.weight(false);
  EXPECT_EQ(source.materialize_count(), base + 1);

  // A training forward after an eval materialization rebuilds (the eval
  // pass cached no gates), revalidating the eval cache...
  source.weight(/*training=*/true);
  EXPECT_EQ(source.materialize_count(), base + 2);
  source.weight(false);
  EXPECT_EQ(source.materialize_count(), base + 2);
  // ...and a second training call (the backward pass re-fetching weights)
  // reuses the gate-cached materialization instead of rebuilding.
  source.weight(/*training=*/true);
  EXPECT_EQ(source.materialize_count(), base + 2);

  // An optimizer step bumps the parameter versions.
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  Sgd sgd(params, {});
  source.backward(Tensor::full({6, 6}, 0.1f));
  sgd.step();
  source.weight(false);
  EXPECT_EQ(source.materialize_count(), base + 3);

  // freeze_mask changes the materialization function.
  source.freeze_mask();
  source.weight(false);
  EXPECT_EQ(source.materialize_count(), base + 4);
  source.weight(false);
  EXPECT_EQ(source.materialize_count(), base + 4);
}

TEST(EvalDirtyFlag, CsqSkippedEvalMatchesFreshMaterialization) {
  Rng rng(311);
  CsqWeightOptions options;
  CsqWeightSource source("w", {5, 7}, 7, options, rng);
  source.set_beta(5.0f);
  const Tensor cached = source.weight(false);  // deep copy of the first run
  source.weight(false);                        // served from the cache
  const Tensor& again = source.weight(false);
  for (std::int64_t i = 0; i < cached.numel(); ++i) {
    ASSERT_EQ(cached[i], again[i]);
  }
  // Perturbing a logit under the mutation contract produces fresh weights.
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  params[1]->value[0] += 1.5f;
  params[1]->mark_updated();
  const Tensor& fresh = source.weight(false);
  float diff = 0.0f;
  for (std::int64_t i = 0; i < cached.numel(); ++i) {
    diff = std::max(diff, std::fabs(fresh[i] - cached[i]));
  }
  EXPECT_GT(diff, 0.0f) << "stale weights served after a marked update";
}

TEST(EvalDirtyFlag, AllFamiliesSkipUnchangedEvalForwards) {
  Rng rng(312);
  std::vector<WeightSourcePtr> sources;
  sources.push_back(
      std::make_unique<BsqWeightSource>("bsq", std::vector<std::int64_t>{4, 4},
                                        4, rng));
  sources.push_back(std::make_unique<SteUniformWeightSource>(
      "ste", std::vector<std::int64_t>{4, 4}, 4, /*bits=*/4, rng));
  sources.push_back(std::make_unique<DorefaWeightSource>(
      "dorefa", std::vector<std::int64_t>{4, 4}, 4, /*bits=*/2, rng));
  sources.push_back(std::make_unique<LqNetsWeightSource>(
      "lqnets", std::vector<std::int64_t>{4, 4}, 4, /*bits=*/2, rng));
  for (WeightSourcePtr& source : sources) {
    source->weight(false);
    const std::uint64_t base = source->materialize_count();
    source->weight(false);
    source->weight(false);
    EXPECT_EQ(source->materialize_count(), base)
        << source->kind() << ": unchanged eval re-ran";

    std::vector<Parameter*> params;
    source->collect_parameters(params);
    params.back()->value[0] += 0.25f;
    params.back()->mark_updated();
    source->weight(false);
    EXPECT_EQ(source->materialize_count(), base + 1)
        << source->kind() << ": marked update did not invalidate";
  }
}

TEST(EvalDirtyFlag, BackwardWeightFetchReusesForwardMaterialization) {
  // The conv/linear backward passes call weight(true) to rebuild the GEMM
  // operands; with unchanged parameters that must be a cache hit, not a
  // second full materialization per step.
  Rng rng(314);
  CsqWeightOptions options;
  CsqWeightSource source("w", {6, 6}, 6, options, rng);
  source.set_beta(3.0f);
  source.weight(/*training=*/true);  // forward
  const std::uint64_t count = source.materialize_count();
  source.weight(/*training=*/true);  // backward's operand fetch
  EXPECT_EQ(source.materialize_count(), count);
  source.backward(Tensor::full({6, 6}, 0.1f));
  // After backward consumed the gate cache, a new training forward must
  // rebuild even though no parameter changed yet.
  source.weight(/*training=*/true);
  EXPECT_EQ(source.materialize_count(), count + 1);
}

TEST(EvalDirtyFlag, LqNetsTrainingBasisUpdateInvalidatesEvalCache) {
  Rng rng(313);
  LqNetsWeightSource source("w", {16, 16}, 16, /*bits=*/2, rng);
  source.weight(false);
  // The training M-step refits the basis; the cached encoding is stale.
  source.weight(true);
  const std::uint64_t count = source.materialize_count();
  source.weight(false);
  EXPECT_EQ(source.materialize_count(), count + 1)
      << "eval served an encoding from a pre-update basis";
}

// --------------------------------------------------------- workspace ----

TEST(Workspace, GrowOnceSemantics) {
  Workspace ws;
  EXPECT_EQ(ws.growth_count(), 0u);
  float* a = ws.floats(0, 100);
  const std::uint64_t after_first = ws.growth_count();
  EXPECT_GT(after_first, 0u);
  // Same or smaller requests recycle without growth.
  EXPECT_EQ(ws.floats(0, 100), a);
  EXPECT_EQ(ws.floats(0, 10), a);
  EXPECT_EQ(ws.growth_count(), after_first);
  // Larger requests grow (and may move).
  ws.floats(0, 1000);
  EXPECT_GT(ws.growth_count(), after_first);
}

TEST(Workspace, TensorSlotsKeepReferencesStableAcrossSlotCreation) {
  Workspace ws;
  Tensor& first = ws.tensor(0, {8, 8});
  first.fill(3.5f);
  // Creating every other slot must not relocate slot 0 (the conv backward
  // holds the cols reference while creating the grad_weight slot).
  for (int slot = 1; slot < Workspace::kMaxSlots; ++slot) {
    ws.tensor(slot, {4, 4});
  }
  EXPECT_EQ(&ws.peek(0), &first);
  EXPECT_FLOAT_EQ(first[0], 3.5f);
}

TEST(Workspace, ResizeKeepsStorageAndPeekRequiresPopulation) {
  Workspace ws;
  Tensor& t = ws.tensor(0, {2, 6});
  const float* data = t.data();
  const std::uint64_t growth = ws.growth_count();
  // Same element count, different shape: storage and growth count hold.
  Tensor& reshaped = ws.tensor(0, {3, 4});
  EXPECT_EQ(reshaped.data(), data);
  EXPECT_EQ(ws.growth_count(), growth);
  EXPECT_EQ(reshaped.dim(0), 3);
  EXPECT_THROW(ws.peek(1), check_error);
  EXPECT_THROW(ws.floats(Workspace::kMaxSlots, 4), check_error);
}

// -------------------------------------------------------- tensor pool ----

TEST(TensorPool, RecyclesBuffersAcrossTensorLifetimes) {
  const TensorPoolStats before = tensor_pool_stats();
  {
    Tensor a({64, 64});
    a.fill(1.0f);
  }
  {
    Tensor b = Tensor::uninitialized({64, 64});
    (void)b;
  }
  const TensorPoolStats after = tensor_pool_stats();
  EXPECT_GT(after.data_requests, before.data_requests);
  // The second tensor reuses the first one's released span.
  EXPECT_GT(after.data_reuses, before.data_reuses);
}

TEST(TensorPool, ResizeUnspecifiedReusesCapacity) {
  Tensor t({100});
  const float* data = t.data();
  t.resize_unspecified({10, 10});
  EXPECT_EQ(t.data(), data);
  EXPECT_EQ(t.ndim(), 2);
  t.resize_unspecified({5});
  EXPECT_EQ(t.data(), data);
  EXPECT_EQ(t.numel(), 5);
}

}  // namespace
}  // namespace csq
