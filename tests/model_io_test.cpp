// Tests for the quantized-model container (core/model_io): roundtrip
// fidelity, format validation against corrupt/truncated files, export
// preconditions.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <vector>

#include <gtest/gtest.h>

#include "core/csq_weight.h"
#include "core/model_io.h"
#include "nn/models.h"
#include "runtime/compiled_graph.h"
#include "runtime/graph_artifact.h"
#include "util/check.h"
#include "util/rng.h"

namespace csq {
namespace {

// Unique temp path per test to avoid collisions under parallel ctest.
std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "csq_model_io_" + tag + ".bin";
}

std::vector<QuantizedLayerExport> make_layers() {
  QuantizedLayerExport a;
  a.name = "conv1";
  a.shape = {2, 3};
  a.codes = {0, 64, -128, 255, -255, 7};
  a.scale = 0.125f;
  a.bits = 4;
  QuantizedLayerExport b;
  b.name = "fc";
  b.shape = {1, 2, 1, 1};
  b.codes = {-1, 1};
  b.scale = 2.0f;
  b.bits = 1;
  return {a, b};
}

TEST(ModelIo, SaveLoadRoundtrip) {
  const std::string path = temp_path("roundtrip");
  const auto layers = make_layers();
  ASSERT_TRUE(save_quantized_model(path, layers));

  const auto loaded = load_quantized_model(path);
  ASSERT_EQ(loaded.size(), layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    EXPECT_EQ(loaded[l].name, layers[l].name);
    EXPECT_EQ(loaded[l].shape, layers[l].shape);
    EXPECT_EQ(loaded[l].codes, layers[l].codes);
    EXPECT_EQ(loaded[l].bits, layers[l].bits);
    EXPECT_FLOAT_EQ(loaded[l].scale, layers[l].scale);
  }
  std::remove(path.c_str());
}

TEST(ModelIo, StorageBitsAggregatesLayers) {
  const auto layers = make_layers();
  EXPECT_EQ(model_storage_bits(layers),
            layers[0].storage_bits() + layers[1].storage_bits());
}

TEST(ModelIo, RejectsOutOfGridCodesOnSave) {
  auto layers = make_layers();
  layers[0].codes[0] = 300;  // outside the 8-bit grid
  EXPECT_THROW(save_quantized_model(temp_path("badcode"), layers),
               check_error);
}

TEST(ModelIo, RejectsBadMagic) {
  const std::string path = temp_path("badmagic");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPEnope this is not a model file";
  }
  EXPECT_THROW(load_quantized_model(path), check_error);
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsTruncatedFile) {
  const std::string path = temp_path("truncated");
  ASSERT_TRUE(save_quantized_model(path, make_layers()));
  // Chop the last bytes off.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() - 5));
  }
  EXPECT_THROW(load_quantized_model(path), check_error);
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsMissingFile) {
  EXPECT_THROW(load_quantized_model(temp_path("does_not_exist")),
               check_error);
}

// ------------------------------------------------------- golden files ---
//
// Committed v1 and v2 fixtures (tests/data/). The graph-section format
// change (v3, runtime/graph_artifact.h) must never disturb how existing
// containers read: every field of these files is asserted byte for byte
// against the values they were written with.

std::string golden_path(const std::string& name) {
  return std::string(CSQ_TEST_DATA_DIR) + "/" + name;
}

void expect_golden_conv1(const QuantizedLayerExport& layer) {
  EXPECT_EQ(layer.name, "conv1");
  EXPECT_EQ(layer.shape, (std::vector<std::int64_t>{2, 3}));
  EXPECT_EQ(layer.codes, (std::vector<std::int32_t>{0, 64, -128, 255, -255, 7}));
  EXPECT_EQ(layer.bits, 3);
  EXPECT_EQ(layer.scale, 0.5f);
}

TEST(ModelIoGolden, V1FixtureLoadsIdentically) {
  const auto layers = load_quantized_model(golden_path("golden_v1.csqm"));
  ASSERT_EQ(layers.size(), 1u);
  expect_golden_conv1(layers[0]);
  // v1 carries no denominator field: the CSQ default applies.
  EXPECT_EQ(layers[0].denominator, 255.0f);
}

TEST(ModelIoGolden, V2FixtureLoadsIdentically) {
  const auto layers = load_quantized_model(golden_path("golden_v2.csqm"));
  ASSERT_EQ(layers.size(), 2u);
  expect_golden_conv1(layers[0]);
  EXPECT_EQ(layers[0].denominator, 255.0f);
  EXPECT_EQ(layers[1].name, "fc");
  EXPECT_EQ(layers[1].shape, (std::vector<std::int64_t>{1, 2, 1, 1}));
  EXPECT_EQ(layers[1].codes, (std::vector<std::int32_t>{-1, 1}));
  EXPECT_EQ(layers[1].bits, 1);
  EXPECT_EQ(layers[1].scale, 2.0f);
  EXPECT_EQ(layers[1].denominator, 85.0f);
}

TEST(ModelIoGolden, V1FixtureIsByteStable) {
  // The fixture is 61 bytes written once and committed; a loader change
  // that needs the file to change is a format break, not a refactor.
  std::ifstream in(golden_path("golden_v1.csqm"), std::ios::binary);
  ASSERT_TRUE(in);
  const std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  EXPECT_EQ(contents.size(), 61u);
  EXPECT_EQ(contents.substr(0, 4), "CSQM");
}

TEST(ModelIoGolden, V3FixtureIsByteStable) {
  // 1137 bytes written by the PR-4 graph-artifact writer (graph-section
  // v1: square pools only, no kernel_w field) and committed; the v2
  // section format must keep reading it as a legacy file, never require
  // regenerating it.
  std::ifstream in(golden_path("golden_v3.csqm"), std::ios::binary);
  ASSERT_TRUE(in);
  const std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  EXPECT_EQ(contents.size(), 1137u);
  EXPECT_EQ(contents.substr(0, 4), "CSQM");
  // Container version 3 (the graph-artifact container).
  EXPECT_EQ(static_cast<unsigned char>(contents[4]), 3u);
}

TEST(ModelIoGolden, V3FixtureLayerSectionLoadsAsPlainModel) {
  // A serving artifact doubles as a quantized-model container: the layer
  // reader consumes the layer section and ignores the graph section.
  const auto layers = load_quantized_model(golden_path("golden_v3.csqm"));
  ASSERT_EQ(layers.size(), 3u);
  EXPECT_EQ(layers[0].name, "conv1");
  EXPECT_EQ(layers[0].shape,
            (std::vector<std::int64_t>{4, 3, 3, 3}));
  EXPECT_EQ(layers[0].bits, 3);
  EXPECT_EQ(layers[1].name, "conv2");
  EXPECT_EQ(layers[2].name, "fc");
  EXPECT_EQ(layers[2].shape, (std::vector<std::int64_t>{3, 4}));
}

TEST(ModelIoGolden, V3FixtureServesBitIdentically) {
  // The legacy graph section replays into a serving graph whose forward is
  // pinned to the logits recorded when the fixture was written: the v2
  // reader, the legacy maxpool stride normalization (v1 records carry only
  // the kernel; replay pooled with stride == kernel) and the liveness-
  // colored buffer plan must all preserve the served bits.
  runtime::CompiledGraph graph =
      runtime::load_graph(golden_path("golden_v3.csqm"));
  EXPECT_EQ(graph.io_shape().out_features, 3);
  ASSERT_EQ(graph.program().instrs.size(), 10u);
  bool saw_pool = false;
  for (const runtime::ProgramInstr& instr : graph.program().instrs) {
    if (instr.kind != runtime::ProgramInstr::Kind::kMaxPool) continue;
    saw_pool = true;
    EXPECT_EQ(instr.kernel, 2);
    EXPECT_EQ(instr.kernel_w, 0);
    EXPECT_EQ(instr.stride, 2);  // normalized from the v1 implicit stride
    EXPECT_EQ(instr.pad, 0);
  }
  EXPECT_TRUE(saw_pool);

  Tensor probe({2, 3, 8, 8});
  Rng probe_rng(9999);
  for (std::int64_t i = 0; i < probe.numel(); ++i) {
    probe[i] = probe_rng.uniform(-1.0f, 1.0f);
  }
  const Tensor logits = graph.forward(probe);
  ASSERT_EQ(logits.numel(), 6);
  const float expected[6] = {0.505121469f, 0.067494683f, 0.670592308f,
                             0.204661295f, 0.154584587f, 0.557375431f};
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(logits[i], expected[i]) << "logit " << i;
  }
}

TEST(ModelIo, ExportModelRequiresFinalizedCsqSources) {
  Rng rng(50);
  ModelConfig config;
  config.base_width = 4;

  // Dense model: export must refuse.
  Model dense = make_resnet20(config, dense_weight_factory(), nullptr, rng);
  EXPECT_THROW(export_model(dense), check_error);

  // CSQ model: not finalized -> integer_codes refuses.
  std::vector<CsqWeightSource*> sources;
  Model csq_model =
      make_resnet20(config, csq_weight_factory(&sources), nullptr, rng);
  EXPECT_THROW(export_model(csq_model), check_error);

  // Finalized: full roundtrip through disk, bit-exact codes.
  for (CsqWeightSource* source : sources) source->finalize();
  const auto layers = export_model(csq_model);
  EXPECT_EQ(layers.size(), csq_model.quant_layers().size());

  const std::string path = temp_path("resnet");
  ASSERT_TRUE(save_quantized_model(path, layers));
  const auto loaded = load_quantized_model(path);
  ASSERT_EQ(loaded.size(), layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    EXPECT_EQ(loaded[l].codes, layers[l].codes);
    EXPECT_EQ(loaded[l].name, layers[l].name);
  }
  std::remove(path.c_str());
}

// ---- training checkpoints (CSQC container) --------------------------------

Model checkpoint_model(std::uint64_t seed) {
  Rng rng(seed);
  ModelConfig config;
  config.num_classes = 4;
  config.base_width = 4;
  return make_resnet_cifar(8, config, dense_weight_factory(), nullptr, rng);
}

// Deterministic, seed-independent parameter pattern so the committed golden
// fixture's expected values are reproducible from the test source alone.
void fill_pattern(Model& model) {
  std::int64_t i = 0;
  for (Parameter* param : model.parameters()) {
    float* data = param->value.data();
    for (std::int64_t j = 0; j < param->value.numel(); ++j, ++i) {
      data[j] = 0.03125f * static_cast<float>(i % 257) - 4.0f;
    }
    param->mark_updated();
  }
}

std::vector<char> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

TEST(Checkpoint, RoundTripRestoresEveryParameterAndBumpsVersions) {
  Model model = checkpoint_model(41);
  fill_pattern(model);
  const std::string path = temp_path("ckpt_roundtrip");
  ASSERT_TRUE(save_checkpoint(path, model));

  Model fresh = checkpoint_model(42);  // different seed: different values
  std::vector<std::uint64_t> versions;
  for (Parameter* param : fresh.parameters()) versions.push_back(param->version);
  load_checkpoint(path, fresh);

  const ParameterArena& a = model.arena();
  const ParameterArena& b = fresh.arena();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.values(), b.values(),
                        static_cast<std::size_t>(a.size()) * sizeof(float)),
            0)
      << "restored values differ";
  const std::vector<Parameter*>& params = fresh.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_GT(params[i]->version, versions[i])
        << params[i]->name << ": load must bump the version";
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, ArenaSaveByteIdenticalToPerTensorSave) {
  Model model = checkpoint_model(43);
  fill_pattern(model);
  model.arena();  // bind BEFORE either save: both paths see arena views
  const std::string arena_path = temp_path("ckpt_arena");
  const std::string tensor_path = temp_path("ckpt_tensor");
  ASSERT_TRUE(save_checkpoint(arena_path, model));
  ASSERT_TRUE(save_checkpoint_per_tensor(tensor_path, model));

  const std::vector<char> arena_bytes = read_file_bytes(arena_path);
  const std::vector<char> tensor_bytes = read_file_bytes(tensor_path);
  ASSERT_FALSE(arena_bytes.empty());
  EXPECT_EQ(arena_bytes, tensor_bytes)
      << "single-write arena checkpoint differs from per-tensor bytes";
  std::remove(arena_path.c_str());
  std::remove(tensor_path.c_str());
}

TEST(Checkpoint, PerTensorSaveWithoutArenaMatchesArenaSave) {
  // The legacy per-tensor writer must produce the same bytes whether or not
  // the model has ever been arena-bound.
  Model unbound = checkpoint_model(44);
  fill_pattern(unbound);
  const std::string unbound_path = temp_path("ckpt_unbound");
  ASSERT_TRUE(save_checkpoint_per_tensor(unbound_path, unbound));

  Model bound = checkpoint_model(44);
  fill_pattern(bound);
  const std::string bound_path = temp_path("ckpt_bound");
  ASSERT_TRUE(save_checkpoint(bound_path, bound));

  EXPECT_EQ(read_file_bytes(unbound_path), read_file_bytes(bound_path));
  std::remove(unbound_path.c_str());
  std::remove(bound_path.c_str());
}

TEST(Checkpoint, LegacyV1FileLoads) {
  Model model = checkpoint_model(45);
  fill_pattern(model);
  const std::string path = temp_path("ckpt_v1");
  ASSERT_TRUE(save_checkpoint_legacy(path, model));

  Model fresh = checkpoint_model(46);
  load_checkpoint(path, fresh);
  const ParameterArena& a = model.arena();
  const ParameterArena& b = fresh.arena();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.values(), b.values(),
                        static_cast<std::size_t>(a.size()) * sizeof(float)),
            0);
  std::remove(path.c_str());
}

TEST(Checkpoint, GoldenPreArenaFixtureLoads) {
  // Committed fixture written by the v1 (pre-arena, per-tensor interleaved)
  // writer with the deterministic fill_pattern values. Regenerate with
  // CSQ_REGEN_GOLDEN=1 only on a deliberate format change.
  const std::string path = golden_path("golden_checkpoint_v1.csqc");
  if (std::getenv("CSQ_REGEN_GOLDEN") != nullptr) {
    Model writer = checkpoint_model(47);
    fill_pattern(writer);
    ASSERT_TRUE(save_checkpoint_legacy(path, writer));
  }

  Model model = checkpoint_model(48);
  load_checkpoint(path, model);

  // The loaded values must be exactly the deterministic pattern.
  std::int64_t i = 0;
  for (Parameter* param : model.parameters()) {
    const float* data = param->value.data();
    for (std::int64_t j = 0; j < param->value.numel(); ++j, ++i) {
      ASSERT_EQ(data[j], 0.03125f * static_cast<float>(i % 257) - 4.0f)
          << param->name << " element " << j;
    }
  }
}

TEST(Checkpoint, RejectsMismatchedModelAndCorruptFiles) {
  Model model = checkpoint_model(49);
  const std::string path = temp_path("ckpt_mismatch");
  ASSERT_TRUE(save_checkpoint(path, model));

  // Different architecture: parameter list differs.
  Rng rng(50);
  ModelConfig wide;
  wide.num_classes = 4;
  wide.base_width = 8;
  Model other = make_resnet_cifar(8, wide, dense_weight_factory(), nullptr, rng);
  EXPECT_THROW(load_checkpoint(path, other), check_error);

  // Truncated payload.
  const std::vector<char> bytes = read_file_bytes(path);
  const std::string truncated_path = temp_path("ckpt_truncated");
  {
    std::ofstream out(truncated_path, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 64));
  }
  Model fresh = checkpoint_model(49);
  EXPECT_THROW(load_checkpoint(truncated_path, fresh), check_error);

  // Bad magic.
  const std::string magic_path = temp_path("ckpt_badmagic");
  {
    std::ofstream out(magic_path, std::ios::binary);
    out.write("NOPE", 4);
    out.write(bytes.data() + 4,
              static_cast<std::streamsize>(bytes.size() - 4));
  }
  Model fresh2 = checkpoint_model(49);
  EXPECT_THROW(load_checkpoint(magic_path, fresh2), check_error);

  std::remove(path.c_str());
  std::remove(truncated_path.c_str());
  std::remove(magic_path.c_str());
}

}  // namespace
}  // namespace csq
