// Tests for src/util: contracts, rng, thread pool, tables, env.
#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace csq {
namespace {

TEST(Check, PassingConditionDoesNotThrow) {
  const auto passing_check = [] { CSQ_CHECK(1 + 1 == 2) << "never built"; };
  EXPECT_NO_THROW(passing_check());
}

TEST(Check, FailingConditionThrowsWithMessage) {
  try {
    CSQ_CHECK(false) << "context " << 42;
    FAIL() << "expected check_error";
  } catch (const check_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u32() == b.next_u32()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float value = rng.uniform();
    EXPECT_GE(value, 0.0f);
    EXPECT_LT(value, 1.0f);
  }
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(11);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t value = rng.uniform_int(7);
    EXPECT_LT(value, 7u);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 7u);  // all buckets hit in 500 draws
}

TEST(Rng, UniformIntRejectsZeroRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(0), check_error);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(5);
  Rng child_a = parent.split();
  Rng child_b = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (child_a.next_u32() == child_b.next_u32()) ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> counters(1000);
  parallel_for(0, 1000, [&](std::int64_t i) { ++counters[i]; });
  for (const auto& counter : counters) EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ChunkedVariantCoversRange) {
  std::atomic<std::int64_t> total{0};
  parallel_for_chunked(0, 517, [&](std::int64_t begin, std::int64_t end) {
    std::int64_t local = 0;
    for (std::int64_t i = begin; i < end; ++i) local += i;
    total += local;
  });
  EXPECT_EQ(total.load(), 517 * 516 / 2);
}

TEST(ThreadPool, WorkerExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::int64_t i) {
                     if (i == 31) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsSerially) {
  std::atomic<int> total{0};
  parallel_for(0, 8, [&](std::int64_t) {
    // Inner loop must not deadlock; it runs serially on the worker.
    parallel_for(0, 8, [&](std::int64_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  int calls = 0;
  parallel_for(5, 5, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(TextTable, AlignsColumnsAndPrintsHeader) {
  TextTable table("demo");
  table.set_header({"Method", "Acc(%)"});
  table.add_row({"FP", "92.62"});
  table.add_rule();
  table.add_row({"CSQ T2", "92.68"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("Method"), std::string::npos);
  EXPECT_NE(text.find("CSQ T2"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable table("bad");
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), check_error);
}

TEST(CsvWriter, WritesHeaderAndRows) {
  CsvWriter csv({"epoch", "bits"});
  csv.add_row({"0", "7.5"});
  csv.add_row({"1", "6.0"});
  std::ostringstream out;
  csv.write(out);
  EXPECT_EQ(out.str(), "epoch,bits\n0,7.5\n1,6.0\n");
}

TEST(FormatFloat, FixedPrecision) {
  EXPECT_EQ(format_float(10.6666, 2), "10.67");
  EXPECT_EQ(format_float(1.0, 1), "1.0");
}

TEST(Env, IntFallsBackWhenUnset) {
  EXPECT_EQ(env_int("CSQ_SURELY_UNSET_VAR", 42), 42);
}

TEST(Env, IntParsesStrictDecimal) {
  ::setenv("CSQ_TEST_ENV_INT", "17", 1);
  EXPECT_EQ(env_int("CSQ_TEST_ENV_INT", 3), 17);
  ::setenv("CSQ_TEST_ENV_INT", "-8", 1);
  EXPECT_EQ(env_int("CSQ_TEST_ENV_INT", 3), -8);
  ::unsetenv("CSQ_TEST_ENV_INT");
}

TEST(Env, IntRejectsGarbageAndFallsBack) {
  // Before the strict parse, atoi turned every one of these into a silent 0.
  const char* bad[] = {"abc", "12abc", "1.5", "", " 7", "7 ", "0x10"};
  for (const char* value : bad) {
    ::setenv("CSQ_TEST_ENV_INT", value, 1);
    EXPECT_EQ(env_int("CSQ_TEST_ENV_INT", 42), 42) << "value: '" << value
                                                   << "'";
  }
  ::unsetenv("CSQ_TEST_ENV_INT");
}

TEST(Env, IntRejectsOverflowAndFallsBack) {
  ::setenv("CSQ_TEST_ENV_INT", "99999999999999999999", 1);
  EXPECT_EQ(env_int("CSQ_TEST_ENV_INT", 7), 7);
  ::setenv("CSQ_TEST_ENV_INT", "-99999999999999999999", 1);
  EXPECT_EQ(env_int("CSQ_TEST_ENV_INT", 7), 7);
  ::unsetenv("CSQ_TEST_ENV_INT");
}

TEST(Env, DoubleParsesStrictAndRejectsGarbage) {
  ::setenv("CSQ_TEST_ENV_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("CSQ_TEST_ENV_DBL", 1.0), 2.5);
  ::setenv("CSQ_TEST_ENV_DBL", "2.5x", 1);
  EXPECT_DOUBLE_EQ(env_double("CSQ_TEST_ENV_DBL", 1.0), 1.0);
  ::setenv("CSQ_TEST_ENV_DBL", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(env_double("CSQ_TEST_ENV_DBL", 1.0), 1.0);
  ::unsetenv("CSQ_TEST_ENV_DBL");
}

TEST(Env, BenchModeNameRoundtrip) {
  EXPECT_STREQ(bench_mode_name(BenchMode::smoke), "smoke");
  EXPECT_STREQ(bench_mode_name(BenchMode::normal), "default");
  EXPECT_STREQ(bench_mode_name(BenchMode::full), "full");
}

}  // namespace
}  // namespace csq
