// Tests for src/nn: gradchecks for every layer and block, shape handling,
// model builders, parameter registration.
#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/blocks.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "nn/softmax_ce.h"
#include "nn/weight_source.h"
#include "tensor/ops.h"
#include "test_helpers.h"
#include "util/check.h"

namespace csq {
namespace {

using testing::check_input_gradient;
using testing::check_parameter_gradients;
using testing::expect_close;
using testing::numeric_derivative;
using testing::probe_loss;
using testing::random_tensor;

// ---------------------------------------------------------------- conv --

struct Conv2dCase {
  std::int64_t in_c, out_c, kernel, stride, pad, h, w;
  bool bias;
};

class Conv2dParamTest : public ::testing::TestWithParam<Conv2dCase> {};

TEST_P(Conv2dParamTest, InputAndParameterGradients) {
  const Conv2dCase& p = GetParam();
  Rng rng(31);
  Conv2dConfig config;
  config.in_channels = p.in_c;
  config.out_channels = p.out_c;
  config.kernel = p.kernel;
  config.stride = p.stride;
  config.pad = p.pad;
  config.bias = p.bias;
  Conv2d conv("conv", config, dense_weight_factory(), rng);

  Tensor input = random_tensor({2, p.in_c, p.h, p.w}, rng);
  check_input_gradient(conv, input, rng);
  check_parameter_gradients(conv, input, rng);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Conv2dParamTest,
    ::testing::Values(Conv2dCase{2, 3, 3, 1, 1, 5, 5, false},
                      Conv2dCase{1, 2, 3, 2, 1, 6, 6, false},
                      Conv2dCase{3, 2, 1, 1, 0, 4, 4, false},
                      Conv2dCase{2, 4, 1, 2, 0, 6, 6, false},
                      Conv2dCase{2, 2, 3, 1, 1, 5, 5, true},
                      Conv2dCase{2, 3, 5, 1, 2, 7, 7, false}));

TEST(Conv2d, OutputShape) {
  Rng rng(1);
  Conv2dConfig config;
  config.in_channels = 3;
  config.out_channels = 8;
  config.kernel = 3;
  config.stride = 2;
  config.pad = 1;
  Conv2d conv("conv", config, dense_weight_factory(), rng);
  Tensor out = conv.forward(random_tensor({4, 3, 16, 16}, rng), false);
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{4, 8, 8, 8}));
}

TEST(Conv2d, BackwardWithoutForwardThrows) {
  Rng rng(1);
  Conv2dConfig config;
  config.in_channels = 1;
  config.out_channels = 1;
  Conv2d conv("conv", config, dense_weight_factory(), rng);
  EXPECT_THROW(conv.backward(Tensor({1, 1, 4, 4})), check_error);
}

TEST(Conv2d, WrongChannelCountThrows) {
  Rng rng(1);
  Conv2dConfig config;
  config.in_channels = 3;
  config.out_channels = 4;
  Conv2d conv("conv", config, dense_weight_factory(), rng);
  EXPECT_THROW(conv.forward(Tensor({1, 2, 8, 8}), false), check_error);
}

// -------------------------------------------------------------- linear --

TEST(Linear, InputAndParameterGradients) {
  Rng rng(32);
  Linear linear("fc", 7, 4, dense_weight_factory(), rng, /*bias=*/true);
  Tensor input = random_tensor({3, 7}, rng);
  check_input_gradient(linear, input, rng);
  check_parameter_gradients(linear, input, rng);
}

TEST(Linear, MatchesManualComputation) {
  Rng rng(33);
  Linear linear("fc", 2, 2, dense_weight_factory(), rng, /*bias=*/false);
  std::vector<Parameter*> params;
  linear.collect_parameters(params);
  params[0]->value = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  Tensor out = linear.forward(Tensor::from_data({1, 2}, {5, 6}), false);
  EXPECT_FLOAT_EQ(out[0], 1 * 5 + 2 * 6);
  EXPECT_FLOAT_EQ(out[1], 3 * 5 + 4 * 6);
}

// ----------------------------------------------------------- batchnorm --

TEST(BatchNorm2d, InputAndParameterGradients) {
  Rng rng(34);
  BatchNorm2d bn("bn", 3);
  Tensor input = random_tensor({4, 3, 3, 3}, rng, -2.0f, 2.0f);
  check_input_gradient(bn, input, rng, /*samples=*/6, /*rtol=*/8e-2);
  check_parameter_gradients(bn, input, rng, /*samples=*/4, /*rtol=*/8e-2);
}

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  Rng rng(35);
  BatchNorm2d bn("bn", 2);
  Tensor input = random_tensor({8, 2, 4, 4}, rng, -3.0f, 5.0f);
  Tensor out = bn.forward(input, /*training=*/true);
  // Per-channel mean ~0 and var ~1 after normalization (gamma=1, beta=0).
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sum_sq = 0.0;
    std::int64_t count = 0;
    for (std::int64_t b = 0; b < 8; ++b) {
      for (std::int64_t p = 0; p < 16; ++p) {
        const float v = out[(b * 2 + c) * 16 + p];
        sum += v;
        sum_sq += static_cast<double>(v) * v;
        ++count;
      }
    }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / count, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStatistics) {
  Rng rng(36);
  BatchNorm2d bn("bn", 1);
  // Train long enough for the EMA running stats to converge to the batch
  // statistics (mean 2, var 1/3 for uniform(1,3)).
  for (int i = 0; i < 100; ++i) {
    Tensor batch = random_tensor({8, 1, 2, 2}, rng, 1.0f, 3.0f);
    bn.forward(batch, /*training=*/true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 2.0f, 0.15f);
  EXPECT_NEAR(bn.running_var()[0], 1.0f / 3.0f, 0.15f);
  // Eval on a constant input equal to the running mean: output ~ 0.
  Tensor constant = Tensor::full({1, 1, 2, 2}, 2.0f);
  Tensor out = bn.forward(constant, /*training=*/false);
  EXPECT_NEAR(out[0], 0.0f, 0.3f);
}

// ------------------------------------------------- relu / pool / misc --

TEST(ReLU, ForwardAndGradient) {
  Rng rng(37);
  ReLU relu("relu");
  Tensor input = Tensor::from_data({1, 4}, {-1.0f, 0.5f, -0.2f, 2.0f});
  Tensor out = relu.forward(input, true);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.5f);
  EXPECT_FLOAT_EQ(out[3], 2.0f);
  Tensor grad = relu.backward(Tensor::full({1, 4}, 1.0f));
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
  EXPECT_FLOAT_EQ(grad[1], 1.0f);
}

TEST(MaxPool2d, ForwardPicksMaxAndRoutesGradient) {
  MaxPool2d pool("pool", 2);
  Tensor input = Tensor::from_data({1, 1, 2, 2}, {1, 5, 3, 2});
  Tensor out = pool.forward(input, true);
  EXPECT_EQ(out.numel(), 1);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  Tensor grad = pool.backward(Tensor::full({1, 1, 1, 1}, 2.0f));
  EXPECT_FLOAT_EQ(grad[1], 2.0f);  // gradient lands on the argmax
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
}

TEST(MaxPool2d, NonTilingInputDropsTrailingRows) {
  // Floor output grid: a 2x2/s2 window over (3, 4) yields (1, 2) — the
  // trailing row is dropped, matching the integer runtime's lowering.
  MaxPool2d pool("pool", 2);
  Tensor input = Tensor::from_data(
      {1, 1, 3, 4}, {1, 5, 2, 0, 3, 2, 9, 1, 7, 7, 7, 7});
  Tensor out = pool.forward(input, false);
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 9.0f);
}

TEST(MaxPool2d, StridedPaddedWindowAndGradient) {
  // 3x3 window, stride 2, pad 1 over 4x4: out 2x2; padded taps are -inf.
  Pool2dConfig config{3, 3, 2, 1};
  MaxPool2d pool("pool", config);
  Rng rng(301);
  Tensor input = testing::random_tensor({2, 3, 4, 4}, rng);
  Tensor out = pool.forward(input, false);
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{2, 3, 2, 2}));
  // Top-left window covers rows/cols [0, 2) of the input.
  float expected = input[0];
  for (std::int64_t y = 0; y < 2; ++y) {
    for (std::int64_t x = 0; x < 2; ++x) {
      expected = std::max(expected, input[y * 4 + x]);
    }
  }
  EXPECT_FLOAT_EQ(out[0], expected);
  testing::check_input_gradient(pool, input, rng);
}

TEST(MaxPool2d, NonSquareKernel) {
  Pool2dConfig config{3, 2, 2, 0};
  MaxPool2d pool("pool", config);
  Rng rng(302);
  Tensor input = testing::random_tensor({1, 2, 7, 6}, rng);
  Tensor out = pool.forward(input, true);
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{1, 2, 3, 3}));
  testing::check_input_gradient(pool, input, rng);
}

TEST(MaxPool2d, RejectsPaddingNotSmallerThanKernel) {
  EXPECT_THROW(MaxPool2d("pool", Pool2dConfig{2, 2, 2, 2}), check_error);
  EXPECT_THROW(AvgPool2d("pool", Pool2dConfig{2, 2, 2, 2}), check_error);
  EXPECT_THROW(MaxPool2d("pool", Pool2dConfig{2, 2, 0, 0}), check_error);
}

TEST(AvgPool2d, ForwardAveragesAndPadCountsAsZero) {
  // 2x2/s2 tiling window: plain means.
  AvgPool2d pool("avg", Pool2dConfig{2, 2, 2, 0});
  Tensor input = Tensor::from_data({1, 1, 2, 4}, {1, 3, 10, 20, 5, 7, 30, 40});
  Tensor out = pool.forward(input, false);
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(out[0], 4.0f);
  EXPECT_FLOAT_EQ(out[1], 25.0f);

  // Padded window: the divisor stays kernel_h*kernel_w and out-of-bounds
  // taps contribute zero (count_include_pad semantics).
  AvgPool2d padded("avg_pad", Pool2dConfig{2, 2, 2, 1});
  Tensor small = Tensor::from_data({1, 1, 2, 2}, {8.0f, 4.0f, 2.0f, 6.0f});
  Tensor pad_out = padded.forward(small, false);
  EXPECT_EQ(pad_out.shape(), (std::vector<std::int64_t>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(pad_out[0], 2.0f);  // only tap 8 in a 4-tap window
  EXPECT_FLOAT_EQ(pad_out[1], 1.0f);
  EXPECT_FLOAT_EQ(pad_out[3], 1.5f);
}

TEST(AvgPool2d, OverlappingStrideGradient) {
  AvgPool2d pool("avg", Pool2dConfig{3, 3, 2, 1});
  Rng rng(303);
  Tensor input = testing::random_tensor({2, 2, 5, 5}, rng);
  Tensor out = pool.forward(input, true);
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{2, 2, 3, 3}));
  testing::check_input_gradient(pool, input, rng);
}

TEST(GlobalAvgPool, ForwardAndGradient) {
  GlobalAvgPool pool("gap");
  Tensor input = Tensor::from_data({1, 2, 1, 2}, {1, 3, 10, 20});
  Tensor out = pool.forward(input, true);
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], 15.0f);
  Tensor grad = pool.backward(Tensor::from_data({1, 2}, {4.0f, 6.0f}));
  EXPECT_FLOAT_EQ(grad[0], 2.0f);  // 4 / plane(2)
  EXPECT_FLOAT_EQ(grad[2], 3.0f);
}

TEST(Flatten, RoundTrip) {
  Flatten flatten("flatten");
  Rng rng(38);
  Tensor input = random_tensor({2, 3, 2, 2}, rng);
  Tensor out = flatten.forward(input, true);
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{2, 12}));
  Tensor grad = flatten.backward(out);
  EXPECT_EQ(grad.shape(), input.shape());
  EXPECT_LT(max_abs_diff(grad, input), 1e-6f);
}

// ---------------------------------------------------------- softmax ce --

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 4});
  const float value = loss.forward(logits, {0, 3});
  EXPECT_NEAR(value, std::log(4.0f), 1e-5f);
}

TEST(SoftmaxCrossEntropy, GradientMatchesNumeric) {
  Rng rng(39);
  SoftmaxCrossEntropy loss;
  Tensor logits = random_tensor({3, 5}, rng);
  const std::vector<int> labels = {1, 4, 2};
  loss.forward(logits, labels);
  Tensor grad = loss.backward();
  for (std::int64_t index : {0L, 6L, 9L, 14L}) {
    const float original = logits[index];
    const double numeric = numeric_derivative(
        [&](float x) {
          logits[index] = x;
          SoftmaxCrossEntropy probe;
          return static_cast<double>(probe.forward(logits, labels));
        },
        original);
    logits[index] = original;
    expect_close(grad[index], numeric, 5e-2, 1e-4);
  }
}

TEST(SoftmaxCrossEntropy, GradientRowsSumToZero) {
  Rng rng(40);
  SoftmaxCrossEntropy loss;
  Tensor logits = random_tensor({2, 6}, rng, -3.0f, 3.0f);
  loss.forward(logits, {0, 5});
  Tensor grad = loss.backward();
  for (std::int64_t b = 0; b < 2; ++b) {
    double row = 0.0;
    for (std::int64_t j = 0; j < 6; ++j) row += grad[b * 6 + j];
    EXPECT_NEAR(row, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, PredictionsAndCountCorrect) {
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::from_data({2, 3}, {0, 5, 0, 9, 0, 0});
  loss.forward(logits, {1, 2});
  EXPECT_EQ(loss.predictions(), (std::vector<int>{1, 0}));
  EXPECT_EQ(count_correct(loss.predictions(), {1, 2}), 1);
}

TEST(SoftmaxCrossEntropy, BadLabelThrows) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  EXPECT_THROW(loss.forward(logits, {3}), check_error);
}

// -------------------------------------------------------------- blocks --

TEST(BasicBlock, IdentitySkipGradients) {
  Rng rng(41);
  BlockConfig config;
  config.in_channels = 3;
  config.out_channels = 3;
  config.stride = 1;
  BasicBlock block("block", config, dense_weight_factory(), nullptr, rng);
  Tensor input = random_tensor({2, 3, 4, 4}, rng);
  check_input_gradient(block, input, rng, /*samples=*/6, /*rtol=*/8e-2);
}

TEST(BasicBlock, DownsampleSkipGradientsAndShape) {
  Rng rng(42);
  BlockConfig config;
  config.in_channels = 2;
  config.out_channels = 4;
  config.stride = 2;
  BasicBlock block("block", config, dense_weight_factory(), nullptr, rng);
  Tensor input = random_tensor({2, 2, 6, 6}, rng);
  Tensor out = block.forward(input, false);
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{2, 4, 3, 3}));
  check_input_gradient(block, input, rng, /*samples=*/5, /*rtol=*/8e-2);
}

TEST(Bottleneck, ShapeAndGradients) {
  Rng rng(43);
  BlockConfig config;
  config.in_channels = 4;
  config.out_channels = 2;  // expands to 8
  config.stride = 2;
  Bottleneck block("block", config, dense_weight_factory(), nullptr, rng);
  Tensor input = random_tensor({2, 4, 4, 4}, rng);
  Tensor out = block.forward(input, false);
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{2, 8, 2, 2}));
  check_input_gradient(block, input, rng, /*samples=*/5, /*rtol=*/1e-1);
}

// ---------------------------------------------------------------- model --

TEST(Models, Resnet20LayerCountMatchesFigure4) {
  Rng rng(44);
  ModelConfig config;
  config.base_width = 4;
  Model model = make_resnet20(config, dense_weight_factory(), nullptr, rng);
  // Figure 4 lists conv1, 18 block convs, fc = 20 named layers; two
  // downsample convs are additional quantizable layers.
  EXPECT_EQ(model.quant_layers().size(), 22u);
  EXPECT_EQ(model.quant_layers().front().name, "conv1");
  EXPECT_EQ(model.quant_layers().back().name, "fc");
  Tensor out = model.forward(Tensor({2, 3, 16, 16}), false);
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{2, 10}));
}

TEST(Models, Resnet18And50Shapes) {
  Rng rng(45);
  ModelConfig config;
  config.base_width = 4;
  config.num_classes = 7;
  Model r18 = make_resnet18(config, dense_weight_factory(), nullptr, rng);
  EXPECT_EQ(r18.forward(Tensor({1, 3, 16, 16}), false).shape(),
            (std::vector<std::int64_t>{1, 7}));
  // 1 stem + 16 block convs + 3 downsample + 1 fc = 21.
  EXPECT_EQ(r18.quant_layers().size(), 21u);

  Model r50 = make_resnet50(config, dense_weight_factory(), nullptr, rng);
  EXPECT_EQ(r50.forward(Tensor({1, 3, 16, 16}), false).shape(),
            (std::vector<std::int64_t>{1, 7}));
  // 1 stem + 48 bottleneck convs + 4 downsample + 1 fc = 54.
  EXPECT_EQ(r50.quant_layers().size(), 54u);
}

TEST(Models, Vgg19bnShapeAndLayerCount) {
  Rng rng(46);
  ModelConfig config;
  config.base_width = 4;
  Model vgg = make_vgg19bn(config, dense_weight_factory(), nullptr, rng);
  EXPECT_EQ(vgg.forward(Tensor({1, 3, 32, 32}), false).shape(),
            (std::vector<std::int64_t>{1, 10}));
  EXPECT_EQ(vgg.quant_layers().size(), 17u);  // 16 convs + fc
}

TEST(Models, InvalidResnetDepthThrows) {
  Rng rng(47);
  ModelConfig config;
  EXPECT_THROW(
      make_resnet_cifar(21, config, dense_weight_factory(), nullptr, rng),
      check_error);
}

TEST(Model, AverageBitsAndCompressionForDense) {
  Rng rng(48);
  ModelConfig config;
  config.base_width = 4;
  Model model = make_resnet20(config, dense_weight_factory(), nullptr, rng);
  EXPECT_DOUBLE_EQ(model.average_bits(), 32.0);
  EXPECT_DOUBLE_EQ(model.compression_ratio(), 1.0);
  EXPECT_GT(model.total_weight_count(), 0);
}

TEST(Model, TrainStepReducesLossOnTinyProblem) {
  Rng rng(49);
  ModelConfig config;
  config.base_width = 4;
  config.num_classes = 2;
  Model model = make_resnet20(config, dense_weight_factory(), nullptr, rng);

  Tensor images = random_tensor({8, 3, 8, 8}, rng);
  const std::vector<int> labels = {0, 1, 0, 1, 0, 1, 0, 1};
  SoftmaxCrossEntropy loss;

  std::vector<Parameter*> params = model.parameters();
  const float initial = loss.forward(model.forward(images, true), labels);
  for (int step = 0; step < 15; ++step) {
    model.zero_grad();
    Tensor logits = model.forward(images, true);
    loss.forward(logits, labels);
    model.backward(loss.backward());
    for (Parameter* param : params) {
      for (std::int64_t i = 0; i < param->value.numel(); ++i) {
        param->value[i] -= 0.05f * param->grad[i];
      }
      param->mark_updated();
    }
  }
  const float final_loss = loss.forward(model.forward(images, true), labels);
  EXPECT_LT(final_loss, initial * 0.5f);
}

TEST(Sequential, ChainsForwardAndBackward) {
  Rng rng(50);
  auto seq = std::make_unique<Sequential>("seq");
  seq->add(std::make_unique<ReLU>("r1"));
  seq->add(std::make_unique<ReLU>("r2"));
  Tensor input = Tensor::from_data({1, 3}, {-1, 2, 3});
  Tensor out = seq->forward(input, true);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
  Tensor grad = seq->backward(Tensor::full({1, 3}, 1.0f));
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
  EXPECT_FLOAT_EQ(grad[2], 1.0f);
}

}  // namespace
}  // namespace csq
