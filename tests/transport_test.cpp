// Cross-process serving tests (`ctest -L serve_transport`, also swept by
// the sanitize/tsan presets):
//
//  * Transport.*    — the loopback TCP front of the batching server: wire
//    round trips bit-identical to in-process infer, concurrent clients,
//    malformed/oversized/bad-deadline frames, listener-first graceful
//    drain, and the transport.{accept,read,write} failpoints;
//  * ReplicaScaling.* — BatchingServer::set_replicas: runtime scale-up
//    (bootstrapped from the restore template, bit-identical results) and
//    cooperative scale-down with no dropped requests;
//  * Autoscaler.*   — the queue-driven policy loop: replicas climb under
//    sustained backlog and fall back to the floor when idle;
//  * MmapArtifact.* — load_graph_mmap: borrowed weight pages, forwards
//    bit-identical to load_graph, replicas sharing one mapping, save_graph
//    rejecting borrowed programs, and pre-v5 artifacts rejected cleanly.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/csq_weight.h"
#include "nn/models.h"
#include "runtime/compiled_graph.h"
#include "runtime/graph_artifact.h"
#include "runtime/packed_weights.h"
#include "serve/autoscaler.h"
#include "serve/batching_server.h"
#include "serve/transport.h"
#include "test_helpers.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/net.h"
#include "util/rng.h"

namespace csq {
namespace {

using testing::random_tensor;

constexpr std::int64_t kSide = 12;
constexpr std::int64_t kChannels = 3;
constexpr std::int64_t kSampleNumel = kChannels * kSide * kSide;

std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "csq_transport_" + tag + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".csqm";
}

// A small finalized 3-bit CSQ ResNet-20, lowered and calibrated (same
// substrate as serve_test.cpp).
runtime::CompiledGraph make_calibrated_graph() {
  Rng rng(9001);
  std::vector<CsqWeightSource*> registry;
  ModelConfig model_config;
  model_config.base_width = 4;
  CsqWeightOptions weight_options;
  weight_options.fixed_precision = 3;
  Model model = make_resnet20(
      model_config, csq_weight_factory(&registry, weight_options), nullptr,
      rng);
  for (CsqWeightSource* source : registry) source->finalize();

  runtime::LowerOptions options;
  options.in_channels = kChannels;
  options.in_height = kSide;
  options.in_width = kSide;
  runtime::CompiledGraph graph = runtime::lower(model, options);
  Rng calib_rng(9002);
  Tensor calib = random_tensor({8, kChannels, kSide, kSide}, calib_rng);
  graph.calibrate(calib);
  return graph;
}

void expect_bit_identical(const Tensor& expected, const float* actual,
                          const char* what) {
  for (std::int64_t i = 0; i < expected.numel(); ++i) {
    ASSERT_EQ(expected[i], actual[i]) << what << ": logit " << i;
  }
}

// Precomputed single-sample forwards: the oracle every wire response is
// compared against bit-for-bit.
std::vector<Tensor> single_sample_oracle(runtime::CompiledGraph& graph,
                                         const Tensor& samples) {
  const std::int64_t n = samples.shape()[0];
  std::vector<Tensor> expected;
  expected.reserve(static_cast<std::size_t>(n));
  for (std::int64_t s = 0; s < n; ++s) {
    Tensor one({1, kChannels, kSide, kSide});
    std::memcpy(one.data(), samples.data() + s * kSampleNumel,
                static_cast<std::size_t>(kSampleNumel) * sizeof(float));
    expected.push_back(graph.forward(one));
  }
  return expected;
}

// Polls a predicate for up to ~10 s (loaded-CI headroom).
template <typename Predicate>
bool poll(Predicate&& predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

// ---------------------------------------------------------- wire transport --

TEST(Transport, RoundTripIsBitIdenticalToInProcessInfer) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  Rng rng(9100);
  Tensor samples = random_tensor({6, kChannels, kSide, kSide}, rng);
  const std::vector<Tensor> expected = single_sample_oracle(graph, samples);

  serve::BatchingServer server;
  server.add_model("m", [&] {
    std::vector<runtime::CompiledGraph> replicas;
    replicas.push_back(runtime::replicate(graph));
    return replicas;
  }());
  server.start();
  serve::ServeTransport transport(server);
  transport.start();
  ASSERT_GT(transport.port(), 0);

  serve::TransportClient client(transport.port());
  ASSERT_TRUE(client.connected());
  std::vector<float> logits;
  for (int s = 0; s < 6; ++s) {
    const serve::WireStatus status =
        client.infer("m", samples.data() + s * kSampleNumel,
                     static_cast<std::size_t>(kSampleNumel), logits);
    ASSERT_EQ(status, serve::WireStatus::kOk) << "sample " << s;
    ASSERT_EQ(logits.size(), 10u);
    expect_bit_identical(expected[static_cast<std::size_t>(s)],
                         logits.data(), "wire round trip");
  }

  // The response counter is bumped after the write lands, so the client
  // can observe its frame a beat before the stat: poll.
  EXPECT_TRUE(poll([&] { return transport.stats().responses == 6; }));
  const auto stats = transport.stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.requests, 6u);
  EXPECT_EQ(stats.bad_requests, 0u);

  transport.stop();
  server.stop();
}

TEST(Transport, ConcurrentClientsGetBitIdenticalResults) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  Rng rng(9110);
  Tensor samples = random_tensor({8, kChannels, kSide, kSide}, rng);
  const std::vector<Tensor> expected = single_sample_oracle(graph, samples);

  serve::BatchingServer server;
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(runtime::replicate(graph));
  replicas.push_back(runtime::replicate(graph));
  server.add_model("m", std::move(replicas));
  server.start();
  serve::TransportOptions transport_options;
  transport_options.dispatch_threads = 4;
  serve::ServeTransport transport(server, transport_options);
  transport.start();

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      serve::TransportClient client(transport.port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      std::vector<float> logits;
      for (int round = 0; round < 8; ++round) {
        const int s = (c + round) % 8;
        if (client.infer("m", samples.data() + s * kSampleNumel,
                         static_cast<std::size_t>(kSampleNumel),
                         logits) != serve::WireStatus::kOk) {
          ++failures;
          return;
        }
        const Tensor& want = expected[static_cast<std::size_t>(s)];
        for (std::int64_t i = 0; i < want.numel(); ++i) {
          if (want[i] != logits[static_cast<std::size_t>(i)]) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);

  EXPECT_TRUE(poll([&] { return transport.stats().responses == 32; }));
  const auto stats = transport.stats();
  EXPECT_EQ(stats.connections, 4u);
  EXPECT_EQ(stats.requests, 32u);

  transport.stop();
  server.stop();
}

TEST(Transport, BadRequestsAreRejectedWithoutKillingTheConnection) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  serve::BatchingServer server;
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  server.start();
  serve::ServeTransport transport(server);
  transport.start();

  serve::TransportClient client(transport.port());
  ASSERT_TRUE(client.connected());
  std::vector<float> logits;
  std::vector<float> sample(static_cast<std::size_t>(kSampleNumel), 0.0f);

  // Unknown model id.
  EXPECT_EQ(client.infer("nope", sample.data(), sample.size(), logits),
            serve::WireStatus::kBadRequest);
  // Wrong sample count for a known model.
  EXPECT_EQ(client.infer("m", sample.data(), sample.size() - 1, logits),
            serve::WireStatus::kBadRequest);
  // deadline_us < -1 has no wire meaning (-1 is THE no-deadline encoding).
  EXPECT_EQ(client.infer("m", sample.data(), sample.size(), logits,
                         /*deadline_us=*/-5),
            serve::WireStatus::kBadRequest);
  // The frame boundary stayed intact throughout: the same connection still
  // serves a well-formed request.
  EXPECT_EQ(client.infer("m", sample.data(), sample.size(), logits),
            serve::WireStatus::kOk);

  EXPECT_TRUE(poll([&] { return transport.stats().responses == 4; }));
  EXPECT_EQ(transport.stats().bad_requests, 3u);

  transport.stop();
  server.stop();
}

TEST(Transport, WireDeadlinesFollowThePinnedSemantics) {
  // A server whose flush timer is far longer than the test: a single
  // queued request sits waiting, so expired deadlines deterministically
  // cancel while -1 waits out the timer flush.
  runtime::CompiledGraph graph = make_calibrated_graph();
  serve::ServerOptions server_options;
  server_options.max_batch = 16;
  server_options.max_latency_us = 300'000;
  serve::BatchingServer server(server_options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  server.start();
  serve::ServeTransport transport(server);
  transport.start();

  serve::TransportClient client(transport.port());
  ASSERT_TRUE(client.connected());
  std::vector<float> logits;
  std::vector<float> sample(static_cast<std::size_t>(kSampleNumel), 0.25f);

  // deadline 0: already expired on entry -> kTimeout (the request never
  // waits out the 300 ms flush timer).
  EXPECT_EQ(client.infer("m", sample.data(), sample.size(), logits,
                         /*deadline_us=*/0),
            serve::WireStatus::kTimeout);
  // A short positive deadline expires the same way.
  EXPECT_EQ(client.infer("m", sample.data(), sample.size(), logits,
                         /*deadline_us=*/1),
            serve::WireStatus::kTimeout);
  // -1 = no deadline: waits for the timer flush and succeeds.
  EXPECT_EQ(client.infer("m", sample.data(), sample.size(), logits,
                         /*deadline_us=*/-1),
            serve::WireStatus::kOk);

  transport.stop();
  server.stop();
}

TEST(Transport, OversizedAndRunawayFramesDropTheConnection) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  serve::BatchingServer server;
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  server.start();
  serve::TransportOptions options;
  options.max_frame_bytes = 4096;
  serve::ServeTransport transport(server, options);
  transport.start();

  // A declared body length beyond max_frame_bytes is a protocol violation:
  // no response, connection closed.
  net::UniqueFd raw = net::connect_loopback(transport.port());
  ASSERT_TRUE(raw.valid());
  const std::uint32_t huge = 1u << 20;
  ASSERT_TRUE(net::write_full(raw.get(), &huge, sizeof(huge)));
  char probe = 0;
  EXPECT_FALSE(net::read_full(raw.get(), &probe, 1)) << "expected EOF";

  // A malformed-but-small body gets a kBadRequest response instead.
  net::UniqueFd raw2 = net::connect_loopback(transport.port());
  ASSERT_TRUE(raw2.valid());
  const std::uint32_t tiny_len = 4;
  const std::uint32_t garbage = 0xffffffffu;
  ASSERT_TRUE(net::write_full(raw2.get(), &tiny_len, sizeof(tiny_len)));
  ASSERT_TRUE(net::write_full(raw2.get(), &garbage, sizeof(garbage)));
  std::uint32_t response_len = 0;
  ASSERT_TRUE(
      net::read_full(raw2.get(), &response_len, sizeof(response_len)));
  std::vector<std::uint8_t> body(response_len);
  ASSERT_TRUE(net::read_full(raw2.get(), body.data(), body.size()));
  EXPECT_EQ(body[0],
            static_cast<std::uint8_t>(serve::WireStatus::kBadRequest));

  EXPECT_TRUE(poll([&] { return transport.stats().transport_errors >= 1; }));
  transport.stop();
  server.stop();
}

TEST(Transport, StopClosesTheListenerFirstAndDrains) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  serve::BatchingServer server;
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  server.start();
  serve::ServeTransport transport(server);
  transport.start();
  const std::uint16_t port = transport.port();

  serve::TransportClient client(port);
  ASSERT_TRUE(client.connected());
  std::vector<float> logits;
  std::vector<float> sample(static_cast<std::size_t>(kSampleNumel), 0.5f);
  ASSERT_EQ(client.infer("m", sample.data(), sample.size(), logits),
            serve::WireStatus::kOk);

  transport.stop();
  // Every dispatched frame got its response before the teardown.
  const auto stats = transport.stats();
  EXPECT_EQ(stats.responses, stats.requests);
  // The listener is gone: fresh connections are refused.
  serve::TransportClient late(port);
  EXPECT_FALSE(late.connected());
  // stop() is idempotent.
  transport.stop();
  server.stop();
}

#if CSQ_FAILPOINTS_ENABLED

class TransportFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::disarm_all(); }
};

TEST_F(TransportFailpointTest, InjectedFaultsDropOnlyTheAffectedConnection) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  serve::BatchingServer server;
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  server.start();
  serve::ServeTransport transport(server);
  transport.start();

  std::vector<float> logits;
  std::vector<float> sample(static_cast<std::size_t>(kSampleNumel), 1.0f);

  // accept fault: the connection is closed immediately after accept. The
  // TCP handshake itself succeeds (backlog), so the failure surfaces on
  // the first round trip.
  fail::arm("transport.accept", fail::Policy::kOnce);
  serve::TransportClient refused(transport.port());
  EXPECT_EQ(refused.infer("m", sample.data(), sample.size(), logits),
            serve::WireStatus::kTransportError);

  // read fault: mid-connection read failure drops that client only.
  serve::TransportClient victim(transport.port());
  ASSERT_TRUE(victim.connected());
  fail::arm("transport.read", fail::Policy::kOnce);
  EXPECT_EQ(victim.infer("m", sample.data(), sample.size(), logits),
            serve::WireStatus::kTransportError);

  // write fault: the response write fails, the connection dies, and the
  // client observes EOF instead of a frame.
  serve::TransportClient write_victim(transport.port());
  ASSERT_TRUE(write_victim.connected());
  fail::arm("transport.write", fail::Policy::kOnce);
  EXPECT_EQ(write_victim.infer("m", sample.data(), sample.size(), logits),
            serve::WireStatus::kTransportError);

  // The transport as a whole survived every injected fault.
  serve::TransportClient healthy(transport.port());
  ASSERT_TRUE(healthy.connected());
  EXPECT_EQ(healthy.infer("m", sample.data(), sample.size(), logits),
            serve::WireStatus::kOk);
  EXPECT_GE(transport.stats().transport_errors, 3u);

  transport.stop();
  server.stop();
}

#endif  // CSQ_FAILPOINTS_ENABLED

// --------------------------------------------------------- replica scaling --

TEST(ReplicaScaling, ScaleUpBootstrapsBitIdenticalReplicas) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  Rng rng(9200);
  Tensor samples = random_tensor({8, kChannels, kSide, kSide}, rng);
  const std::vector<Tensor> expected = single_sample_oracle(graph, samples);

  serve::ServerOptions options;
  options.max_replicas = 3;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  server.start();
  EXPECT_EQ(server.stats("m").replicas_active, 1);

  server.set_replicas("m", 3);
  ASSERT_TRUE(poll([&] { return server.stats("m").replicas_active == 3; }));
  EXPECT_EQ(server.stats("m").scale_ups, 2u);

  // Scaled-up replicas serve bit-identically (they are restore-template
  // rebuilds of the same program).
  const serve::ModelHandle handle = server.handle("m");
  std::vector<float> logits(10);
  for (int s = 0; s < 8; ++s) {
    ASSERT_EQ(server.try_infer(handle, samples.data() + s * kSampleNumel,
                               logits.data()),
              serve::ServeStatus::kOk);
    expect_bit_identical(expected[static_cast<std::size_t>(s)],
                         logits.data(), "post-scale-up");
  }

  // Cooperative scale-down: workers retire between batches; capacity
  // settles at the new target and requests keep succeeding.
  server.set_replicas("m", 1);
  ASSERT_TRUE(poll([&] { return server.stats("m").replicas_active == 1; }));
  EXPECT_EQ(server.stats("m").scale_downs, 2u);
  ASSERT_EQ(server.try_infer(handle, samples.data(), logits.data()),
            serve::ServeStatus::kOk);
  expect_bit_identical(expected[0], logits.data(), "post-scale-down");

  server.stop();
}

TEST(ReplicaScaling, TargetsOutsideTheSlotRangeAreRejected) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  serve::ServerOptions options;
  options.max_replicas = 2;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  server.start();
  EXPECT_THROW(server.set_replicas("m", 0), check_error);
  EXPECT_THROW(server.set_replicas("m", 3), check_error);
  EXPECT_THROW(server.set_replicas("ghost", 1), check_error);
  // A no-op target is accepted and changes nothing.
  server.set_replicas("m", 1);
  EXPECT_EQ(server.stats("m").replicas_active, 1);
  server.stop();
}

TEST(ReplicaScaling, SetReplicasOutsideTheLifecycleIsANoOp) {
  // Lifecycle races are no-ops, never CHECKs: the autoscaler's policy
  // thread may tick concurrently with stop(), and a throw there cannot
  // propagate — it would std::terminate the process. Argument validation
  // still throws regardless of lifecycle state (caller bugs, not races).
  runtime::CompiledGraph graph = make_calibrated_graph();
  serve::ServerOptions options;
  options.max_replicas = 2;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));

  server.set_replicas("m", 2);  // before start: accepted, no effect
  EXPECT_THROW(server.set_replicas("ghost", 1), check_error);
  EXPECT_THROW(server.set_replicas("m", 0), check_error);
  EXPECT_EQ(server.stats("m").replicas_active, 0);

  server.start();
  EXPECT_EQ(server.stats("m").replicas_active, 1);
  server.stop();

  server.set_replicas("m", 2);  // after stop: accepted, no effect
  EXPECT_EQ(server.stats("m").replicas_active, 0);
}

TEST(Autoscaler, TicksAcrossServerStopAreHarmless) {
  // Shutdown-ordering pin (runs under the tsan preset): stopping the
  // SERVER first leaves the autoscaler ticking against a stopped server.
  // Every tick it lands — including one mid-stop — must no-op instead of
  // crashing the policy thread.
  runtime::CompiledGraph graph = make_calibrated_graph();
  serve::ServerOptions server_options;
  server_options.max_replicas = 2;
  serve::BatchingServer server(server_options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  server.start();

  serve::AutoscalerOptions policy;
  policy.interval_us = 200;  // tick as fast as possible across the stop
  policy.min_replicas = 1;
  policy.max_replicas = 2;
  policy.down_idle_ticks = 1;  // every idle tick proposes a target change
  policy.cooldown_ticks = 0;
  serve::ReplicaAutoscaler autoscaler(server, "m", policy);
  autoscaler.start();

  // Force targets above the floor so the idle policy keeps proposing
  // scale-downs — ticks that call set_replicas, not just observe.
  server.set_replicas("m", 2);
  server.stop();
  // Let ticks land on the stopped server before the autoscaler goes away.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  autoscaler.stop();

  // And the reverse order on a fresh cycle still works.
  server.start();
  serve::ReplicaAutoscaler late(server, "m", policy);
  late.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  late.stop();
  server.stop();
}

TEST(Autoscaler, ReplicasFollowOfferedLoad) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  serve::ServerOptions server_options;
  server_options.max_batch = 1;  // one forward per request: easy backlog
  server_options.max_replicas = 3;
  serve::BatchingServer server(server_options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  server.start();

  serve::AutoscalerOptions policy;
  policy.interval_us = 2'000;
  policy.min_replicas = 1;
  policy.max_replicas = 3;
  policy.up_queue_depth = 2;
  policy.up_ticks = 2;
  policy.down_idle_ticks = 5;
  policy.cooldown_ticks = 1;
  serve::ReplicaAutoscaler autoscaler(server, "m", policy);
  autoscaler.start();

  // Sustained backlog from more producers than one replica can absorb.
  const serve::ModelHandle handle = server.handle("m");
  std::atomic<bool> load{true};
  std::vector<float> sample(static_cast<std::size_t>(kSampleNumel), 0.1f);
  std::vector<std::thread> producers;
  for (int p = 0; p < 6; ++p) {
    producers.emplace_back([&] {
      std::vector<float> logits(10);
      while (load.load()) {
        server.try_infer(handle, sample.data(), logits.data());
      }
    });
  }
  EXPECT_TRUE(poll([&] { return server.stats("m").replicas_active >= 2; }))
      << "no scale-up under sustained backlog";

  // Load stops; the policy walks the count back down to the floor.
  load.store(false);
  for (std::thread& producer : producers) producer.join();
  EXPECT_TRUE(poll([&] { return server.stats("m").replicas_active == 1; }))
      << "no scale-down when idle";
  const auto stats = autoscaler.stats();
  EXPECT_GE(stats.scale_ups, 1u);
  EXPECT_GE(stats.scale_downs, 1u);

  autoscaler.stop();
  server.stop();
}

// ----------------------------------------------------------- mmap loading --

TEST(MmapArtifact, ForwardsAreBitIdenticalToCopyLoad) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  const std::string path = temp_path("mmap_identity");
  ASSERT_TRUE(runtime::save_graph(path, graph));

  Rng rng(9300);
  Tensor images = random_tensor({5, kChannels, kSide, kSide}, rng);
  runtime::CompiledGraph copied = runtime::load_graph(path, /*pooled=*/false);
  runtime::CompiledGraph mapped =
      runtime::load_graph_mmap(path, /*pooled=*/false);

  const Tensor want = copied.forward(images);
  const Tensor got = mapped.forward(images);
  ASSERT_TRUE(want.same_shape(got));
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    ASSERT_EQ(want[i], got[i]) << "logit " << i;
  }

  // The mapped graph borrows every layer's weight pages; the copied one
  // owns them.
  for (const runtime::PackedIntWeights* weights :
       mapped.layer_weight_views()) {
    EXPECT_TRUE(weights->borrowed());
  }
  for (const runtime::PackedIntWeights* weights :
       copied.layer_weight_views()) {
    EXPECT_FALSE(weights->borrowed());
  }
  EXPECT_EQ(mapped.weight_storage_bits(), copied.weight_storage_bits());
  std::remove(path.c_str());
}

TEST(MmapArtifact, ReplicasShareOneMappingAndStayBitIdentical) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  const std::string path = temp_path("mmap_share");
  ASSERT_TRUE(runtime::save_graph(path, graph));

  runtime::CompiledGraph mapped =
      runtime::load_graph_mmap(path, /*pooled=*/false);
  runtime::CompiledGraph sibling = runtime::replicate(mapped);
  // The replica borrows from the SAME mapping (shared program), and the
  // mapping outlives the artifact file: unlink it, then keep serving.
  std::remove(path.c_str());
  for (const runtime::PackedIntWeights* weights :
       sibling.layer_weight_views()) {
    EXPECT_TRUE(weights->borrowed());
  }
  Rng rng(9310);
  Tensor images = random_tensor({3, kChannels, kSide, kSide}, rng);
  const Tensor want = mapped.forward(images);
  const Tensor got = sibling.forward(images);
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    ASSERT_EQ(want[i], got[i]) << "logit " << i;
  }
}

TEST(MmapArtifact, ServesThroughTheBatchingServer) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  const std::string path = temp_path("mmap_serve");
  ASSERT_TRUE(runtime::save_graph(path, graph));
  Rng rng(9320);
  Tensor samples = random_tensor({4, kChannels, kSide, kSide}, rng);
  const std::vector<Tensor> expected = single_sample_oracle(graph, samples);

  serve::BatchingServer server;
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(runtime::load_graph_mmap(path, /*pooled=*/false));
  replicas.push_back(runtime::replicate(replicas.front()));
  server.add_model("m", std::move(replicas));
  server.start();
  const serve::ModelHandle handle = server.handle("m");
  std::vector<float> logits(10);
  for (int s = 0; s < 4; ++s) {
    ASSERT_EQ(server.try_infer(handle, samples.data() + s * kSampleNumel,
                               logits.data()),
              serve::ServeStatus::kOk);
    expect_bit_identical(expected[static_cast<std::size_t>(s)],
                         logits.data(), "mmap-backed serving");
  }
  server.stop();
  std::remove(path.c_str());
}

TEST(MmapArtifact, MappedProgramsCannotBeResaved) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  const std::string path = temp_path("mmap_resave");
  ASSERT_TRUE(runtime::save_graph(path, graph));
  runtime::CompiledGraph mapped =
      runtime::load_graph_mmap(path, /*pooled=*/false);
  // The owned codes are absent from a borrowed program: re-saving would
  // persist an empty layer section. Rejected loudly instead.
  EXPECT_THROW(runtime::save_graph(temp_path("mmap_resave_out"), mapped),
               check_error);
  std::remove(path.c_str());
}

TEST(MmapArtifact, PreV5ArtifactsAreRejectedCleanly) {
  // The committed pre-CRC fixture has neither a trailer nor a weight
  // section: the mmap loader must refuse it BEFORE parsing anything.
  const std::string golden =
      std::string(CSQ_TEST_DATA_DIR) + "/golden_v3.csqm";
  EXPECT_THROW(runtime::load_graph_mmap(golden), check_error);
}

}  // namespace
}  // namespace csq
