// Tests for the flat parameter arena (nn/parameter_arena): borrowed-tensor
// view semantics, binding transparency, the arena-backed SGD sweep's
// bit-identity with the per-parameter path, and the chunk-ordered tree
// reduction kernel underpinning data-parallel gradient combines.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "nn/models.h"
#include "nn/parameter_arena.h"
#include "nn/weight_source.h"
#include "opt/sgd.h"
#include "tensor/quant_kernels.h"
#include "util/check.h"
#include "util/rng.h"

namespace csq {
namespace {

Model tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  ModelConfig config;
  config.num_classes = 4;
  config.base_width = 4;
  return make_resnet_cifar(8, config, dense_weight_factory(), nullptr, rng);
}

// ---- Tensor borrow mode ---------------------------------------------------

TEST(TensorBorrow, ViewReadsAndWritesExternalSpan) {
  std::vector<float> span = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f};
  Tensor view = Tensor::borrow(span.data(), {2, 3});
  EXPECT_TRUE(view.is_borrowed());
  EXPECT_EQ(view.numel(), 6);
  EXPECT_EQ(view.data(), span.data());
  EXPECT_FLOAT_EQ(view[4], 5.0f);

  view[1] = -7.0f;
  EXPECT_FLOAT_EQ(span[1], -7.0f);
  view.fill(0.5f);
  EXPECT_FLOAT_EQ(span[5], 0.5f);
}

TEST(TensorBorrow, CopyFromViewOwnsItsStorage) {
  std::vector<float> span = {1.0f, 2.0f, 3.0f, 4.0f};
  Tensor view = Tensor::borrow(span.data(), {4});
  Tensor copy(view);
  EXPECT_FALSE(copy.is_borrowed());
  EXPECT_NE(copy.data(), span.data());
  copy[0] = 9.0f;
  EXPECT_FLOAT_EQ(span[0], 1.0f);
}

TEST(TensorBorrow, AssignIntoViewCopiesInPlace) {
  std::vector<float> span = {0.0f, 0.0f, 0.0f, 0.0f};
  Tensor view = Tensor::borrow(span.data(), {2, 2});
  Tensor source = Tensor::from_data({4}, {1.0f, 2.0f, 3.0f, 4.0f});
  view = source;
  EXPECT_TRUE(view.is_borrowed());
  EXPECT_EQ(view.data(), span.data());
  EXPECT_FLOAT_EQ(span[3], 4.0f);
  // The view takes the source's shape along with its elements.
  EXPECT_EQ(view.ndim(), 1);
}

TEST(TensorBorrow, AssignIntoViewRequiresMatchingCount) {
  std::vector<float> span = {0.0f, 0.0f, 0.0f};
  Tensor view = Tensor::borrow(span.data(), {3});
  Tensor wrong({4});
  EXPECT_THROW(view = wrong, check_error);
}

// ---- Arena binding --------------------------------------------------------

TEST(ParameterArena, BindingPreservesValuesAndLaysOutContiguously) {
  Model model = tiny_model(5);
  std::vector<std::vector<float>> before;
  for (Parameter* param : model.parameters()) {
    before.emplace_back(param->value.data(),
                        param->value.data() + param->value.numel());
  }

  ParameterArena& arena = model.arena();
  ASSERT_EQ(arena.views().size(), model.parameters().size());

  std::int64_t expected_offset = 0;
  for (std::size_t i = 0; i < arena.views().size(); ++i) {
    const ParameterArena::View& view = arena.views()[i];
    EXPECT_EQ(view.offset, expected_offset);
    expected_offset += view.count;
    EXPECT_TRUE(view.param->value.is_borrowed());
    EXPECT_EQ(view.param->value.data(), arena.values() + view.offset);
    EXPECT_EQ(view.param->grad.data(), arena.grads() + view.offset);
    ASSERT_EQ(view.count, static_cast<std::int64_t>(before[i].size()));
    EXPECT_EQ(std::memcmp(view.param->value.data(), before[i].data(),
                          before[i].size() * sizeof(float)),
              0)
        << view.param->name << " changed during binding";
  }
  EXPECT_EQ(expected_offset, arena.size());
}

TEST(ParameterArena, ElementWritesThroughParameterLandInArena) {
  Model model = tiny_model(6);
  ParameterArena& arena = model.arena();
  Parameter* param = model.parameters().front();
  param->value[0] = 123.5f;
  EXPECT_FLOAT_EQ(arena.values()[arena.views().front().offset], 123.5f);
}

TEST(ParameterArena, ZeroGradsClearsEverything) {
  Model model = tiny_model(7);
  ParameterArena& arena = model.arena();
  arena.grads()[0] = 1.0f;
  arena.grads()[arena.size() - 1] = 2.0f;
  model.zero_grad();  // routes through the arena once bound
  for (std::int64_t i = 0; i < arena.size(); ++i) {
    ASSERT_EQ(arena.grads()[i], 0.0f) << "grad " << i;
  }
}

TEST(ParameterArena, LoadValuesBumpsEveryVersion) {
  Model model = tiny_model(8);
  ParameterArena& arena = model.arena();
  std::vector<std::uint64_t> versions;
  for (Parameter* param : model.parameters()) {
    versions.push_back(param->version);
  }
  std::vector<float> snapshot(arena.values(), arena.values() + arena.size());
  arena.load_values(snapshot.data());
  const std::vector<Parameter*>& params = model.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_GT(params[i]->version, versions[i]) << params[i]->name;
  }
}

TEST(ParameterArena, LayoutMatchesSameBuilderDiffersAcrossBuilders) {
  Model a = tiny_model(9);
  Model b = tiny_model(10);  // different seed, same architecture
  EXPECT_TRUE(a.arena().layout_matches(b.arena()));

  Rng rng(11);
  ModelConfig wide;
  wide.num_classes = 4;
  wide.base_width = 8;
  Model c = make_resnet_cifar(8, wide, dense_weight_factory(), nullptr, rng);
  EXPECT_FALSE(a.arena().layout_matches(c.arena()));
}

TEST(ParameterArena, RebindingIsRejected) {
  Model model = tiny_model(12);
  model.arena();
  EXPECT_THROW(ParameterArena duplicate(model.parameters()), check_error);
}

// ---- Arena-backed SGD -----------------------------------------------------

TEST(ArenaSgd, StepBitIdenticalToPerParameterPath) {
  Model legacy = tiny_model(21);
  Model flat = tiny_model(21);  // same seed: identical initial values

  SgdConfig config;
  config.learning_rate = 0.05f;
  config.momentum = 0.9f;
  config.weight_decay = 5e-4f;
  Sgd legacy_opt(legacy.parameters(), config);
  Sgd flat_opt(flat.arena(), config);

  Rng rng(22);
  const std::vector<Parameter*>& legacy_params = legacy.parameters();
  const std::vector<Parameter*>& flat_params = flat.parameters();
  ASSERT_EQ(legacy_params.size(), flat_params.size());

  for (int step = 0; step < 3; ++step) {
    for (std::size_t p = 0; p < legacy_params.size(); ++p) {
      for (std::int64_t i = 0; i < legacy_params[p]->grad.numel(); ++i) {
        const float g = rng.uniform(-1.0f, 1.0f);
        legacy_params[p]->grad[i] = g;
        flat_params[p]->grad[i] = g;
      }
    }
    legacy_opt.step();
    flat_opt.step();
  }

  for (std::size_t p = 0; p < legacy_params.size(); ++p) {
    ASSERT_EQ(std::memcmp(legacy_params[p]->value.data(),
                          flat_params[p]->value.data(),
                          static_cast<std::size_t>(
                              legacy_params[p]->value.numel()) *
                              sizeof(float)),
              0)
        << legacy_params[p]->name << " diverged";
  }
}

TEST(ArenaSgd, StepBumpsVersions) {
  Model model = tiny_model(23);
  Sgd optimizer(model.arena(), SgdConfig{});
  std::vector<std::uint64_t> versions;
  for (Parameter* param : model.parameters()) {
    versions.push_back(param->version);
  }
  optimizer.step();
  const std::vector<Parameter*>& params = model.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_GT(params[i]->version, versions[i]) << params[i]->name;
  }
}

// ---- Tree reduction kernel ------------------------------------------------

TEST(TreeReduce, MatchesReferenceAndIsExecutionInvariant) {
  Rng rng(31);
  const std::int64_t count = 10'000;  // spans several kernel chunks
  for (const int num_sources : {1, 2, 3, 5, 8, 13}) {
    std::vector<std::vector<float>> data(
        static_cast<std::size_t>(num_sources));
    std::vector<const float*> sources;
    for (auto& span : data) {
      span.resize(static_cast<std::size_t>(count));
      for (float& x : span) x = rng.uniform(-2.0f, 2.0f);
      sources.push_back(span.data());
    }

    // Reference: the same pairwise tree, computed unchunked.
    std::vector<float> expected(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      float lane[kMaxReduceSpans];
      for (int s = 0; s < num_sources; ++s) lane[s] = data[s][i];
      for (int stride = 1; stride < num_sources; stride *= 2) {
        for (int s = 0; s + stride < num_sources; s += 2 * stride) {
          lane[s] += lane[s + stride];
        }
      }
      expected[static_cast<std::size_t>(i)] = lane[0];
    }

    std::vector<float> serial(static_cast<std::size_t>(count));
    std::vector<float> pooled(static_cast<std::size_t>(count));
    tree_reduce_spans(sources.data(), num_sources, serial.data(), count,
                      KernelExec::serial);
    tree_reduce_spans(sources.data(), num_sources, pooled.data(), count,
                      KernelExec::pooled);
    EXPECT_EQ(std::memcmp(serial.data(), expected.data(),
                          expected.size() * sizeof(float)),
              0)
        << num_sources << " sources: serial != reference";
    EXPECT_EQ(std::memcmp(pooled.data(), serial.data(),
                          serial.size() * sizeof(float)),
              0)
        << num_sources << " sources: pooled != serial";
  }
}

TEST(TreeReduce, SingleSourceIsACopy) {
  std::vector<float> src = {1.5f, -2.0f, 3.25f};
  std::vector<float> dst(3, 0.0f);
  const float* sources[1] = {src.data()};
  tree_reduce_spans(sources, 1, dst.data(), 3, KernelExec::serial);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), 3 * sizeof(float)), 0);
}

}  // namespace
}  // namespace csq
