// Integer inference runtime tests:
//
//  * the int8 x uint8 -> int32 GEMM against an exact int64 reference, over
//    the transpose forms, alpha/accumulate modes and pooled execution;
//  * PackedIntWeights shift/split normalization: bit-exact reconstruction
//    of full-range sign-magnitude codes from int8 planes;
//  * integer Conv2d forward parity: exact accumulator match against an
//    int64 reference and float-level agreement with the finalized float
//    path (the satellite the linear-only export tests did not cover);
//  * whole-graph lowering of a finalized ResNet-20 on synthetic CIFAR-like
//    data: bit-exact lowered weights, a top-1 accuracy-drop bound vs the
//    float eval path, and serial-vs-pooled bit-identity;
//  * lowering of the non-CSQ fixed-grid families (STE-Uniform, BSQ)
//    through the generic finalized-codes accessor;
//  * the runtime conformance grid: a parameterized lowering-parity sweep
//    over pooling variants, odd spatial sizes, batch sizes {1, 3, 17} and
//    the three exportable families — unsupported combinations are
//    enumerated as skipped cases (the ROADMAP's op-coverage gaps);
//  * deterministic fuzz over PackedIntWeights' shift/split normalization
//    and the int32-headroom bounds at the GEMM entry points.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/csq_weight.h"
#include "core/export.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "opt/trainer.h"
#include "quant/act_quant.h"
#include "quant/bsq_weight.h"
#include "quant/ste_uniform_weight.h"
#include "runtime/compiled_graph.h"
#include "runtime/packed_weights.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "test_helpers.h"
#include "util/check.h"
#include "util/rng.h"

namespace csq {
namespace {

using testing::random_tensor;

std::vector<std::int8_t> random_s8(std::int64_t count, Rng& rng,
                                   int magnitude = 127) {
  std::vector<std::int8_t> values(static_cast<std::size_t>(count));
  for (auto& v : values) {
    v = static_cast<std::int8_t>(
        rng.uniform(-static_cast<float>(magnitude),
                    static_cast<float>(magnitude)));
  }
  return values;
}

std::vector<std::uint8_t> random_u8(std::int64_t count, Rng& rng,
                                    int magnitude = 255) {
  std::vector<std::uint8_t> values(static_cast<std::size_t>(count));
  for (auto& v : values) {
    v = static_cast<std::uint8_t>(
        rng.uniform(0.0f, static_cast<float>(magnitude)));
  }
  return values;
}

// Exact reference: C = alpha * A * op(B) (+ C), int64 accumulation.
void reference_s8u8(Trans trans_b, std::int64_t m, std::int64_t n,
                    std::int64_t k, std::int32_t alpha, const std::int8_t* a,
                    const std::uint8_t* b, std::int64_t ldb, bool accumulate,
                    std::vector<std::int32_t>& c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        const std::int64_t bv = trans_b == Trans::no ? b[p * ldb + j]
                                                     : b[j * ldb + p];
        acc += static_cast<std::int64_t>(a[i * k + p]) * bv;
      }
      auto& dst = c[static_cast<std::size_t>(i * n + j)];
      dst = static_cast<std::int32_t>((accumulate ? dst : 0) + alpha * acc);
    }
  }
}

TEST(Int8Gemm, MatchesExactReferenceAcrossShapesAndModes) {
  Rng rng(901);
  const std::int64_t extents[] = {1, 3, 17, 64, 129};
  for (const std::int64_t m : extents) {
    for (const std::int64_t n : extents) {
      for (const std::int64_t k : extents) {
        for (const Trans trans_b : {Trans::no, Trans::yes}) {
          for (const std::int32_t alpha : {1, 2}) {
            for (const bool accumulate : {false, true}) {
              const auto a = random_s8(m * k, rng);
              const auto b = random_u8(k * n, rng);
              const std::int64_t ldb = trans_b == Trans::no ? n : k;
              std::vector<std::int32_t> expected(
                  static_cast<std::size_t>(m * n));
              std::vector<std::int32_t> actual(
                  static_cast<std::size_t>(m * n));
              if (accumulate) {
                for (std::int64_t i = 0; i < m * n; ++i) {
                  const auto seed = static_cast<std::int32_t>(
                      rng.uniform(-100.0f, 100.0f));
                  expected[static_cast<std::size_t>(i)] = seed;
                  actual[static_cast<std::size_t>(i)] = seed;
                }
              }
              reference_s8u8(trans_b, m, n, k, alpha, a.data(), b.data(),
                             ldb, accumulate, expected);
              gemm_s8u8(trans_b, m, n, k, alpha, a.data(), k, b.data(), ldb,
                        accumulate, actual.data(), n);
              ASSERT_EQ(expected, actual)
                  << "m=" << m << " n=" << n << " k=" << k
                  << " trans_b=" << (trans_b == Trans::yes) << " alpha="
                  << alpha << " accumulate=" << accumulate;
            }
          }
        }
      }
    }
  }
}

TEST(Int8Gemm, PooledIsBitIdenticalToSerial) {
  Rng rng(902);
  const std::int64_t m = 192, n = 160, k = 300;
  const auto a = random_s8(m * k, rng);
  const auto b = random_u8(k * n, rng);
  std::vector<std::int32_t> serial(static_cast<std::size_t>(m * n));
  std::vector<std::int32_t> pooled(static_cast<std::size_t>(m * n));
  gemm_s8u8(Trans::no, m, n, k, 1, a.data(), k, b.data(), n,
            /*accumulate=*/false, serial.data(), n);
  gemm_s8u8_parallel(Trans::no, m, n, k, 1, a.data(), k, b.data(), n,
                     /*accumulate=*/false, pooled.data(), n);
  EXPECT_EQ(serial, pooled);
}

TEST(Int8Gemm, Im2ColU8HandlesKernelWiderThanOutput) {
  // width=1, kernel=7, pad=3 passes validate() with out_w=1: for the outer
  // kernel columns the in-bounds window falls entirely off the output grid
  // and both fill bounds must clamp (regression: the unit-stride fast path
  // overran the buffer here).
  ConvGeometry geom;
  geom.channels = 1;
  geom.height = 1;
  geom.width = 1;
  geom.kernel_h = geom.kernel_w = 7;
  geom.stride = 1;
  geom.pad = 3;
  geom.validate();
  const std::uint8_t image[1] = {200};
  std::vector<std::uint8_t> col(
      static_cast<std::size_t>(geom.col_rows() * geom.col_cols()), 0xAA);
  std::vector<std::uint8_t> guard(64, 0x5B);  // canary after the buffer
  im2col_u8(geom, image, col.data(), /*pad_code=*/7);
  for (std::int64_t r = 0; r < geom.col_rows(); ++r) {
    // Only the center tap (ki=3, kj=3) reads the pixel; the rest is pad.
    EXPECT_EQ(col[static_cast<std::size_t>(r)], r == 24 ? 200 : 7);
  }
  for (const std::uint8_t byte : guard) EXPECT_EQ(byte, 0x5B);
}

// ------------------------------------------------------ packed weights --

WeightCodes make_codes(std::vector<std::int32_t> values, float scale,
                       int bits) {
  WeightCodes codes;
  codes.codes = std::move(values);
  codes.scale = scale;
  codes.denominator = 255.0f;
  codes.bits = bits;
  return codes;
}

TEST(PackedWeights, ShiftNormalizationAvoidsSplit) {
  // Top-3-bits codes: multiples of 32, up to 224 — int8 after the shift.
  const WeightCodes codes =
      make_codes({224, -224, 96, 0, -160, 32}, 0.5f, 3);
  runtime::PackedIntWeights packed(codes, 2, 3);
  EXPECT_EQ(packed.shift(), 5);
  EXPECT_FALSE(packed.split());
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(packed.full_code(i), codes.codes[static_cast<std::size_t>(i)]);
    // One float rounding of step * code — identical to materialize_hard.
    const float expected =
        codes.step() *
        static_cast<float>(codes.codes[static_cast<std::size_t>(i)]);
    EXPECT_EQ(packed.weight(i), expected);
  }
}

TEST(PackedWeights, FullSpanCodesSplitIntoTwoPlanes) {
  // Codes with bit 0 and bit 7 both set cannot shift into int8: split.
  const WeightCodes codes = make_codes({255, -255, 129, -129, 1, 0}, 1.0f, 8);
  runtime::PackedIntWeights packed(codes, 3, 2);
  EXPECT_EQ(packed.shift(), 0);
  EXPECT_TRUE(packed.split());
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(packed.full_code(i), codes.codes[static_cast<std::size_t>(i)]);
  }
}

TEST(PackedWeights, SplitGemmMatchesExactReference) {
  Rng rng(903);
  const std::int64_t rows = 9, cols = 31, n = 13;
  std::vector<std::int32_t> values(static_cast<std::size_t>(rows * cols));
  for (auto& v : values) {
    v = static_cast<std::int32_t>(rng.uniform(-255.0f, 255.0f));
  }
  values[0] = 255;  // force the split path
  const WeightCodes codes = make_codes(values, 0.7f, 8);
  runtime::PackedIntWeights packed(codes, rows, cols);
  ASSERT_TRUE(packed.split());

  const auto act = random_u8(cols * n, rng);
  std::vector<std::int32_t> acc(static_cast<std::size_t>(rows * n));
  packed.gemm(Trans::no, n, act.data(), n, acc.data(), n, /*pooled=*/false);

  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t expected = 0;
      for (std::int64_t p = 0; p < cols; ++p) {
        expected += static_cast<std::int64_t>(
                        values[static_cast<std::size_t>(r * cols + p)]) *
                    act[static_cast<std::size_t>(p * n + j)];
      }
      ASSERT_EQ(acc[static_cast<std::size_t>(r * n + j)], expected)
          << "r=" << r << " j=" << j;
    }
  }
}

// ------------------------------------------- integer conv2d forward -----

TEST(IntegerConv, AccumulatorsMatchExactReferenceAndFloatFinalizedPath) {
  Rng rng(904);
  const std::int64_t oc = 8, ic = 4, kernel = 3;
  CsqWeightOptions options;
  CsqWeightSource source("conv", {oc, ic, kernel, kernel}, ic * kernel * kernel,
                         options, rng);
  source.finalize();

  runtime::PackedIntWeights packed(source.finalized_codes(), oc,
                                   ic * kernel * kernel);
  ConvGeometry geom;
  geom.channels = ic;
  geom.height = 6;
  geom.width = 6;
  geom.kernel_h = geom.kernel_w = kernel;
  geom.stride = 1;
  geom.pad = 1;

  const float act_scale = 0.01f;
  const auto act = random_u8(ic * geom.height * geom.width, rng);

  // Integer path: uint8 im2col, int8-code GEMM, int32 accumulation.
  std::vector<std::uint8_t> col(
      static_cast<std::size_t>(geom.col_rows() * geom.col_cols()));
  im2col_u8(geom, act.data(), col.data(), /*pad_code=*/0);
  std::vector<std::int32_t> acc(
      static_cast<std::size_t>(oc * geom.col_cols()));
  packed.gemm(Trans::no, geom.col_cols(), col.data(), geom.col_cols(),
              acc.data(), geom.col_cols(), /*pooled=*/false);

  // Exact int64 reference over the raw codes (shift folded out).
  const std::vector<std::int32_t> raw_codes =
      source.finalized_codes().codes;
  for (std::int64_t o = 0; o < oc; ++o) {
    for (std::int64_t p = 0; p < geom.col_cols(); ++p) {
      std::int64_t expected = 0;
      for (std::int64_t r = 0; r < geom.col_rows(); ++r) {
        expected += static_cast<std::int64_t>(
                        raw_codes[static_cast<std::size_t>(
                            o * geom.col_rows() + r)] >>
                        packed.shift()) *
                    col[static_cast<std::size_t>(p + r * geom.col_cols())];
      }
      ASSERT_EQ(acc[static_cast<std::size_t>(o * geom.col_cols() + p)],
                expected);
    }
  }

  // Float finalized path: real activations through the materialized weights
  // (the eval-mode Conv2d computation) — must agree to float precision.
  Tensor real_act({ic, geom.height, geom.width});
  for (std::int64_t i = 0; i < real_act.numel(); ++i) {
    real_act[i] = act_scale * static_cast<float>(act[static_cast<std::size_t>(i)]);
  }
  std::vector<float> real_col(
      static_cast<std::size_t>(geom.col_rows() * geom.col_cols()));
  im2col(geom, real_act.data(), real_col.data());
  const Tensor& weights = source.weight(/*training=*/false);
  std::vector<float> float_out(static_cast<std::size_t>(oc * geom.col_cols()),
                               0.0f);
  gemm(Trans::no, Trans::no, oc, geom.col_cols(), geom.col_rows(), 1.0f,
       weights.data(), geom.col_rows(), real_col.data(), geom.col_cols(),
       0.0f, float_out.data(), geom.col_cols());

  const float combined = packed.effective_step() * act_scale;
  float max_rel = 0.0f;
  float max_abs_out = 0.0f;
  for (std::size_t i = 0; i < float_out.size(); ++i) {
    max_abs_out = std::max(max_abs_out, std::fabs(float_out[i]));
  }
  for (std::size_t i = 0; i < float_out.size(); ++i) {
    const float integer_value = combined * static_cast<float>(acc[i]);
    max_rel = std::max(max_rel, std::fabs(integer_value - float_out[i]));
  }
  EXPECT_LT(max_rel, 1e-4f * std::max(1.0f, max_abs_out));
}

// ------------------------------------------------------- whole graph ----

SyntheticConfig small_data_config() {
  SyntheticConfig config = SyntheticConfig::cifar_like();
  config.train_samples = 192;
  config.test_samples = 256;
  return config;
}

TEST(CompiledGraph, FinalizedResnet20EndToEnd) {
  const SyntheticDataset data = make_synthetic(small_data_config());
  Rng rng(905);
  std::vector<CsqWeightSource*> sources;
  ModelConfig model_config;
  model_config.num_classes = data.train.num_classes();
  model_config.base_width = 8;
  Model model =
      make_resnet20(model_config, csq_weight_factory(&sources),
                    fixed_act_quant_factory(/*bits=*/8), rng);

  // A few training-mode passes settle the BN running statistics and the
  // act-quant EMA clip ranges the lowering folds/pins.
  std::vector<int> indices;
  for (int i = 0; i < 64; ++i) indices.push_back(i);
  const Batch calib = data.train.gather(indices);
  for (int step = 0; step < 3; ++step) {
    model.forward(calib.images, /*training=*/true);
  }
  for (CsqWeightSource* source : sources) source->finalize();

  runtime::LowerOptions options;
  options.in_channels = data.train.channels();
  options.in_height = data.train.height();
  options.in_width = data.train.width();
  runtime::CompiledGraph graph = runtime::lower(model, options);
  graph.calibrate(calib.images);

  // 1. Weight reconstruction from the packed int8 planes is bit-exact vs
  //    the float materialization — the paper's "exact quantized model".
  for (const QuantLayer& layer : model.quant_layers()) {
    const Tensor lowered = graph.dequantized_weights(layer.name);
    const Tensor& reference = layer.source->weight(/*training=*/false);
    ASSERT_EQ(lowered.numel(), reference.numel());
    for (std::int64_t i = 0; i < reference.numel(); ++i) {
      ASSERT_EQ(lowered[i], reference[i])
          << layer.name << "[" << i << "] reconstructed inexactly";
    }
  }

  // 2. Top-1 within 1 point of the float eval path.
  const float float_accuracy = evaluate_accuracy(model, data.test, 64);
  const float int8_accuracy =
      runtime::evaluate_graph_accuracy(graph, data.test, 64);
  EXPECT_LE(std::fabs(float_accuracy - int8_accuracy), 1.0f)
      << "float " << float_accuracy << "% vs int8 " << int8_accuracy << "%";

  // 3. Serial vs pooled integer forwards are bit-identical.
  const Batch batch = data.test.gather({0, 1, 2, 3, 4, 5, 6, 7});
  graph.set_pooled(false);
  const Tensor serial_logits = graph.forward(batch.images);
  graph.set_pooled(true);
  const Tensor pooled_logits = graph.forward(batch.images);
  ASSERT_TRUE(serial_logits.same_shape(pooled_logits));
  for (std::int64_t i = 0; i < serial_logits.numel(); ++i) {
    ASSERT_EQ(serial_logits[i], pooled_logits[i]) << "logit " << i;
  }

  // 4. Layer accounting: every quant layer lowered, scheme bits recorded.
  ASSERT_EQ(graph.layers().size(), model.quant_layers().size());
  EXPECT_LT(graph.weight_storage_bits(),
            model.total_weight_count() * 32);
}

TEST(CompiledGraph, CalibratedGraphWithoutActQuantStaysClose) {
  // PTQ-style flow: no activation quantizers in the trained model; every
  // edge scale comes from calibration.
  const SyntheticDataset data = make_synthetic(small_data_config());
  Rng rng(906);
  std::vector<CsqWeightSource*> sources;
  ModelConfig model_config;
  model_config.num_classes = data.train.num_classes();
  model_config.base_width = 8;
  Model model = make_resnet20(model_config, csq_weight_factory(&sources),
                              nullptr, rng);
  std::vector<int> indices;
  for (int i = 0; i < 64; ++i) indices.push_back(i);
  const Batch calib = data.train.gather(indices);
  for (int step = 0; step < 3; ++step) {
    model.forward(calib.images, /*training=*/true);
  }
  for (CsqWeightSource* source : sources) source->finalize();

  runtime::LowerOptions options;
  options.in_channels = data.train.channels();
  options.in_height = data.train.height();
  options.in_width = data.train.width();
  runtime::CompiledGraph graph = runtime::lower(model, options);
  graph.calibrate(calib.images);

  const float float_accuracy = evaluate_accuracy(model, data.test, 64);
  const float int8_accuracy =
      runtime::evaluate_graph_accuracy(graph, data.test, 64);
  EXPECT_LE(std::fabs(float_accuracy - int8_accuracy), 2.0f)
      << "float " << float_accuracy << "% vs int8 " << int8_accuracy << "%";

  // The integer forward tracks the graph's own float reference closely
  // (8-bit edges; per-edge calibrated scales).
  const Batch batch = data.test.gather({0, 1, 2, 3});
  const Tensor reference = graph.forward_reference(batch.images);
  const Tensor integer = graph.forward(batch.images);
  EXPECT_LT(max_abs_diff(reference, integer),
            0.1f * std::max(1.0f, max_abs(reference)));
}

TEST(CompiledGraph, LowBitActQuantEdgesServeTheTrainedGrid) {
  // A 4-bit act-quant model must serve on the 15-level grid it trained
  // with, not the graph's default 255-level grid — the lowering pins both
  // the clip and the level count of the edge.
  const SyntheticDataset data = make_synthetic(small_data_config());
  Rng rng(912);
  std::vector<CsqWeightSource*> sources;
  ModelConfig model_config;
  model_config.num_classes = data.train.num_classes();
  model_config.base_width = 8;
  Model model =
      make_resnet20(model_config, csq_weight_factory(&sources),
                    fixed_act_quant_factory(/*bits=*/4), rng);
  std::vector<int> indices;
  for (int i = 0; i < 64; ++i) indices.push_back(i);
  const Batch calib = data.train.gather(indices);
  for (int step = 0; step < 3; ++step) {
    model.forward(calib.images, /*training=*/true);
  }
  for (CsqWeightSource* source : sources) source->finalize();

  runtime::LowerOptions options;
  options.in_channels = data.train.channels();
  options.in_height = data.train.height();
  options.in_width = data.train.width();
  runtime::CompiledGraph graph = runtime::lower(model, options);
  graph.calibrate(calib.images);

  const float float_accuracy = evaluate_accuracy(model, data.test, 64);
  const float int8_accuracy =
      runtime::evaluate_graph_accuracy(graph, data.test, 64);
  EXPECT_LE(std::fabs(float_accuracy - int8_accuracy), 1.0f)
      << "float " << float_accuracy << "% vs int8 " << int8_accuracy << "%";
}

TEST(CompiledGraph, LowersSteUniformAndBsqFamilies) {
  // The generic finalized-codes seam: non-CSQ fixed-grid families lower and
  // export too (the former dynamic_cast<CsqWeightSource*> rejected them).
  const SyntheticDataset data = make_synthetic(small_data_config());
  Rng rng(907);
  ModelConfig model_config;
  model_config.num_classes = data.train.num_classes();
  model_config.base_width = 4;

  Model ste_model = make_resnet20(model_config,
                                  ste_uniform_weight_factory(/*bits=*/4),
                                  nullptr, rng);
  runtime::LowerOptions options;
  options.in_channels = data.train.channels();
  options.in_height = data.train.height();
  options.in_width = data.train.width();
  runtime::CompiledGraph ste_graph = runtime::lower(ste_model, options);
  const Batch calib = data.train.gather({0, 1, 2, 3, 4, 5, 6, 7});
  ste_graph.calibrate(calib.images);
  const Tensor ste_logits = ste_graph.forward(calib.images);
  EXPECT_EQ(ste_logits.dim(0), 8);
  EXPECT_TRUE(std::isfinite(max_abs(ste_logits)));
  for (const auto& layer : ste_graph.layers()) EXPECT_EQ(layer.bits, 4);

  std::vector<BsqWeightSource*> bsq_sources;
  Model bsq_model = make_resnet20(
      model_config, bsq_weight_factory(&bsq_sources), nullptr, rng);
  runtime::CompiledGraph bsq_graph = runtime::lower(bsq_model, options);
  bsq_graph.calibrate(calib.images);
  const Tensor bsq_logits = bsq_graph.forward(calib.images);
  EXPECT_TRUE(std::isfinite(max_abs(bsq_logits)));
  // BSQ reconstruction is plane-summed floats: near-exact, not bit-exact.
  for (const QuantLayer& layer : bsq_model.quant_layers()) {
    EXPECT_LT(export_roundtrip_error(*layer.source), 1e-5f);
  }
}

TEST(CompiledGraph, RequiresFinalizedSources) {
  Rng rng(908);
  std::vector<CsqWeightSource*> sources;
  ModelConfig model_config;
  model_config.base_width = 4;
  Model model = make_resnet20(model_config, csq_weight_factory(&sources),
                              nullptr, rng);
  runtime::LowerOptions options;
  options.in_height = 16;
  options.in_width = 16;
  EXPECT_THROW(runtime::lower(model, options), check_error);

  Model dense = make_resnet20(model_config, dense_weight_factory(), nullptr,
                              rng);
  EXPECT_THROW(runtime::lower(dense, options), check_error);
}

TEST(CompiledGraph, ForwardWithoutCalibrationThrows) {
  Rng rng(909);
  std::vector<CsqWeightSource*> sources;
  ModelConfig model_config;
  model_config.base_width = 4;
  Model model = make_resnet20(model_config, csq_weight_factory(&sources),
                              nullptr, rng);
  for (CsqWeightSource* source : sources) source->finalize();
  runtime::LowerOptions options;
  options.in_height = 16;
  options.in_width = 16;
  runtime::CompiledGraph graph = runtime::lower(model, options);
  Tensor input({2, 3, 16, 16});
  EXPECT_THROW(graph.forward(input), check_error);
}

// ------------------------------------------------- conformance grid -----
//
// Parameterized lowering-parity sweep: a conv/bn/relu stack with an
// optional max pool, lowered and compared against the float eval path over
// every exportable family, odd and even spatial sizes and the batch sizes
// the serving layer coalesces. Combinations the runtime cannot lower yet
// (pool kernels that do not tile the feature map — MaxPool2d is
// stride == kernel, so these are the pooling stride variants of the
// ROADMAP's op-coverage gap) assert the compile-time rejection and then
// enumerate as SKIPPED cases, so closing a gap flips a skip into coverage.

struct ConformanceCase {
  const char* family;  // "csq" | "bsq" | "ste_uniform"
  int batch;
  int spatial;
  int pool_kernel;  // 1 = no pooling layer
};

std::vector<ConformanceCase> conformance_grid() {
  std::vector<ConformanceCase> cases;
  for (const char* family : {"csq", "bsq", "ste_uniform"}) {
    for (const int batch : {1, 3, 17}) {
      for (const int spatial : {12, 11}) {
        for (const int pool_kernel : {1, 2, 3}) {
          cases.push_back({family, batch, spatial, pool_kernel});
        }
      }
    }
  }
  return cases;
}

std::string conformance_name(
    const ::testing::TestParamInfo<ConformanceCase>& info) {
  const ConformanceCase& param = info.param;
  std::string name = param.family;
  name += "_b" + std::to_string(param.batch);
  name += "_s" + std::to_string(param.spatial);
  name += param.pool_kernel > 1
              ? "_pool" + std::to_string(param.pool_kernel)
              : "_nopool";
  return name;
}

class RuntimeConformance
    : public ::testing::TestWithParam<ConformanceCase> {};

TEST_P(RuntimeConformance, LoweringParityWithFloatEval) {
  const ConformanceCase& param = GetParam();
  const std::int64_t spatial = param.spatial;

  Rng rng(1300);
  Model model;
  std::vector<CsqWeightSource*> csq_registry;
  std::vector<BsqWeightSource*> bsq_registry;
  WeightSourceFactory base;
  if (std::string(param.family) == "csq") {
    CsqWeightOptions options;
    options.fixed_precision = 3;
    base = csq_weight_factory(&csq_registry, options);
  } else if (std::string(param.family) == "bsq") {
    base = bsq_weight_factory(&bsq_registry);
  } else {
    base = ste_uniform_weight_factory(/*bits=*/4);
  }
  const WeightSourceFactory factory = model.recording_factory(std::move(base));

  auto net = std::make_unique<Sequential>("net");
  Conv2dConfig c1;
  c1.in_channels = 3;
  c1.out_channels = 8;
  net->add(std::make_unique<Conv2d>("conv1", c1, factory, rng));
  net->add(std::make_unique<BatchNorm2d>("bn1", 8));
  net->add(std::make_unique<ReLU>("relu1"));
  if (param.pool_kernel > 1) {
    net->add(std::make_unique<MaxPool2d>("pool", param.pool_kernel));
  }
  Conv2dConfig c2;
  c2.in_channels = 8;
  c2.out_channels = 8;
  c2.stride = 2;
  net->add(std::make_unique<Conv2d>("conv2", c2, factory, rng));
  net->add(std::make_unique<BatchNorm2d>("bn2", 8));
  net->add(std::make_unique<ReLU>("relu2"));
  net->add(std::make_unique<GlobalAvgPool>("gap"));
  net->add(std::make_unique<Flatten>("flatten"));
  net->add(std::make_unique<Linear>("fc", 8, 5, factory, rng));
  model.set_root(std::move(net));

  runtime::LowerOptions options;
  options.in_height = spatial;
  options.in_width = spatial;
  const bool pool_lowers =
      param.pool_kernel <= 1 || spatial % param.pool_kernel == 0;
  if (!pool_lowers) {
    // Non-tiling pools are unsupported end to end today: the float module
    // rejects them at forward time and the lowering rejects them at
    // compile time. Assert the compile-time rejection, then enumerate the
    // case as skipped coverage.
    for (CsqWeightSource* source : csq_registry) source->finalize();
    EXPECT_THROW(runtime::lower(model, options), check_error);
    GTEST_SKIP() << "maxpool kernel " << param.pool_kernel
                 << " (stride == kernel) does not tile a " << spatial << "x"
                 << spatial << " feature map — runtime op-coverage gap "
                 << "(ROADMAP: pooling stride variants)";
  }

  // Settle the BN running statistics the lowering folds.
  Rng data_rng(1400 + param.spatial);
  Tensor calib = random_tensor({8, 3, spatial, spatial}, data_rng);
  for (int i = 0; i < 3; ++i) model.forward(calib, /*training=*/true);
  for (CsqWeightSource* source : csq_registry) source->finalize();

  runtime::CompiledGraph graph = runtime::lower(model, options);

  Tensor input = random_tensor({param.batch, 3, spatial, spatial}, data_rng);
  // Calibrate over both batches so every edge's observed range covers the
  // served inputs (ranges accumulate across calls) — the PTQ deployment
  // contract the tolerance below assumes.
  graph.calibrate(calib);
  graph.calibrate(input);
  // Float eval path vs the graph's float reference walk: folded BN and
  // dequantized (bit-exact / near-exact) weights must track the module
  // tree closely.
  const Tensor eval = model.forward(input, /*training=*/false);
  const Tensor reference = graph.forward_reference(input);
  ASSERT_TRUE(eval.same_shape(reference));
  EXPECT_LT(max_abs_diff(eval, reference),
            1e-2f * std::max(1.0f, max_abs(eval)));

  // Integer path vs the reference: activation-quantization error only.
  graph.set_pooled(false);
  const Tensor serial = graph.forward(input);
  EXPECT_LT(max_abs_diff(serial, reference),
            0.1f * std::max(1.0f, max_abs(reference)));

  // Serial and pooled integer forwards are bit-identical.
  graph.set_pooled(true);
  const Tensor pooled = graph.forward(input);
  ASSERT_TRUE(serial.same_shape(pooled));
  for (std::int64_t i = 0; i < serial.numel(); ++i) {
    ASSERT_EQ(serial[i], pooled[i]) << "logit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RuntimeConformance,
                         ::testing::ValuesIn(conformance_grid()),
                         conformance_name);

// ------------------------------------------------- packed-weights fuzz ---

TEST(PackedWeightsFuzz, SeededRandomGridsReconstructBitExactly) {
  Rng rng(5001);
  for (int trial = 0; trial < 120; ++trial) {
    const auto rows = 1 + static_cast<std::int64_t>(rng.uniform(0.0f, 5.9f));
    const auto cols = 1 + static_cast<std::int64_t>(rng.uniform(0.0f, 47.9f));
    const int mode = trial % 4;
    std::vector<std::int32_t> values(static_cast<std::size_t>(rows * cols));
    for (auto& v : values) {
      switch (mode) {
        case 0:  // all-zero plane (shift degenerates, codes stay exact)
          v = 0;
          break;
        case 1:  // full span, |code| up to 255 (forces the 2*hi+lo split)
          v = static_cast<std::int32_t>(rng.uniform(-255.9f, 255.9f));
          break;
        case 2:  // multiples of 4: the power-of-two shift path
          v = 4 * static_cast<std::int32_t>(rng.uniform(-63.9f, 63.9f));
          break;
        default: {  // sparse single-bit planes with zeros sprinkled in
          const int bit = static_cast<int>(rng.uniform(0.0f, 7.99f));
          v = (rng.uniform(-1.0f, 1.0f) < 0.0f ? -1 : 1) * (1 << bit);
          if (rng.uniform(0.0f, 1.0f) < 0.3f) v = 0;
          break;
        }
      }
    }
    if (mode == 1) values.front() = 255;  // pin the span's extreme
    const WeightCodes codes =
        make_codes(values, 0.1f + rng.uniform(0.0f, 2.0f), 8);
    runtime::PackedIntWeights packed(codes, rows, cols);
    for (std::int64_t i = 0; i < rows * cols; ++i) {
      ASSERT_EQ(packed.full_code(i),
                values[static_cast<std::size_t>(i)])
          << "trial " << trial << " element " << i;
      // Bit-exact float reconstruction: one rounding of step * code, the
      // same operation materialize_hard performs.
      ASSERT_EQ(packed.weight(i),
                codes.step() *
                    static_cast<float>(values[static_cast<std::size_t>(i)]))
          << "trial " << trial << " element " << i;
    }
    if (trial % 6 == 0) {
      // Drive the packed planes through the GEMM (split trials chain the
      // hi/lo passes through alpha) against an exact int64 reference. The
      // accumulator is in stored-plane units: the power-of-two shift is
      // folded into effective_step(), so the reference uses code >> shift.
      const std::int64_t n = 1 + static_cast<std::int64_t>(
          rng.uniform(0.0f, 6.9f));
      const auto acts = random_u8(cols * n, rng);
      std::vector<std::int32_t> acc(static_cast<std::size_t>(rows * n));
      packed.gemm(Trans::no, n, acts.data(), n, acc.data(), n,
                  /*pooled=*/false);
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t j = 0; j < n; ++j) {
          std::int64_t expected = 0;
          for (std::int64_t p = 0; p < cols; ++p) {
            expected +=
                static_cast<std::int64_t>(
                    values[static_cast<std::size_t>(r * cols + p)] >>
                    packed.shift()) *
                acts[static_cast<std::size_t>(p * n + j)];
          }
          ASSERT_EQ(acc[static_cast<std::size_t>(r * n + j)], expected)
              << "trial " << trial << " r=" << r << " j=" << j;
        }
      }
    }
  }
}

TEST(PackedWeightsFuzz, RejectsReductionDepthsBeyondInt32Headroom) {
  // The exactness bound (worst split contribution 65535 per depth step)
  // requires k <= 32767; both the packer and the raw GEMM entry points
  // must refuse anything larger.
  std::vector<std::int32_t> values(32768, 1);
  EXPECT_THROW(
      runtime::PackedIntWeights(make_codes(values, 1.0f, 8), 1, 32768),
      check_error);

  std::vector<std::int8_t> a(1, 1);
  std::vector<std::uint8_t> b(1, 1);
  std::int32_t c = 0;
  EXPECT_THROW(gemm_s8u8(Trans::no, 1, 1, 32768, 1, a.data(), 32768,
                         b.data(), 1, /*accumulate=*/false, &c, 1),
               check_error);

  // The boundary itself is legal.
  values.resize(32767);
  runtime::PackedIntWeights packed(make_codes(values, 1.0f, 8), 1, 32767);
  EXPECT_EQ(packed.cols(), 32767);
}

TEST(CompiledGraph, LowersVgg19WithMaxPools) {
  // VGG exercises the maxpool lowering and deep conv/bn/relu chains.
  Rng rng(910);
  ModelConfig model_config;
  model_config.base_width = 4;
  model_config.num_classes = 10;
  Model model = make_vgg19bn(model_config,
                             ste_uniform_weight_factory(/*bits=*/4), nullptr,
                             rng);
  runtime::LowerOptions options;
  options.in_height = 32;
  options.in_width = 32;
  runtime::CompiledGraph graph = runtime::lower(model, options);

  Rng data_rng(911);
  Tensor images = random_tensor({4, 3, 32, 32}, data_rng);
  graph.calibrate(images);
  graph.set_pooled(false);
  const Tensor serial = graph.forward(images);
  graph.set_pooled(true);
  const Tensor pooled = graph.forward(images);
  for (std::int64_t i = 0; i < serial.numel(); ++i) {
    ASSERT_EQ(serial[i], pooled[i]);
  }
  EXPECT_EQ(serial.dim(1), 10);
}

}  // namespace
}  // namespace csq
