// Integer inference runtime tests:
//
//  * the int8 x uint8 -> int32 GEMM against an exact int64 reference, over
//    the transpose forms, alpha/accumulate modes and pooled execution;
//  * PackedIntWeights shift/split normalization: bit-exact reconstruction
//    of full-range sign-magnitude codes from int8 planes;
//  * integer Conv2d forward parity: exact accumulator match against an
//    int64 reference and float-level agreement with the finalized float
//    path (the satellite the linear-only export tests did not cover);
//  * whole-graph lowering of a finalized ResNet-20 on synthetic CIFAR-like
//    data: bit-exact lowered weights, a top-1 accuracy-drop bound vs the
//    float eval path, and serial-vs-pooled bit-identity;
//  * lowering of the non-CSQ fixed-grid families (STE-Uniform, BSQ)
//    through the generic finalized-codes accessor;
//  * the runtime conformance grid: a parameterized lowering-parity sweep
//    over pooling variants (strided/padded/non-tiling windows, average
//    pooling, non-square kernels and inputs), conv-head (no-Linear)
//    models, batch sizes {1, 3, 17} and the three exportable families —
//    remaining genuine gaps are enumerated as skipped cases;
//  * the liveness-colored buffer planner: workspace_bytes() regression
//    against the one-slot-per-edge baseline and bit-identity of planned
//    vs unplanned forwards, plus artifact round trips of the v2 pool
//    records (rectangular strided windows, average pooling, conv heads);
//  * deterministic fuzz over PackedIntWeights' shift/split normalization
//    and the int32-headroom bounds at the GEMM entry points.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/csq_weight.h"
#include "core/export.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "opt/trainer.h"
#include "quant/act_quant.h"
#include "quant/bsq_weight.h"
#include "quant/ste_uniform_weight.h"
#include "runtime/compiled_graph.h"
#include "runtime/graph_artifact.h"
#include "runtime/packed_weights.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "test_helpers.h"
#include "util/check.h"
#include "util/rng.h"

namespace csq {
namespace {

using testing::random_tensor;

std::vector<std::int8_t> random_s8(std::int64_t count, Rng& rng,
                                   int magnitude = 127) {
  std::vector<std::int8_t> values(static_cast<std::size_t>(count));
  for (auto& v : values) {
    v = static_cast<std::int8_t>(
        rng.uniform(-static_cast<float>(magnitude),
                    static_cast<float>(magnitude)));
  }
  return values;
}

std::vector<std::uint8_t> random_u8(std::int64_t count, Rng& rng,
                                    int magnitude = 255) {
  std::vector<std::uint8_t> values(static_cast<std::size_t>(count));
  for (auto& v : values) {
    v = static_cast<std::uint8_t>(
        rng.uniform(0.0f, static_cast<float>(magnitude)));
  }
  return values;
}

// Exact reference: C = alpha * A * op(B) (+ C), int64 accumulation.
void reference_s8u8(Trans trans_b, std::int64_t m, std::int64_t n,
                    std::int64_t k, std::int32_t alpha, const std::int8_t* a,
                    const std::uint8_t* b, std::int64_t ldb, bool accumulate,
                    std::vector<std::int32_t>& c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        const std::int64_t bv = trans_b == Trans::no ? b[p * ldb + j]
                                                     : b[j * ldb + p];
        acc += static_cast<std::int64_t>(a[i * k + p]) * bv;
      }
      auto& dst = c[static_cast<std::size_t>(i * n + j)];
      dst = static_cast<std::int32_t>((accumulate ? dst : 0) + alpha * acc);
    }
  }
}

TEST(Int8Gemm, MatchesExactReferenceAcrossShapesAndModes) {
  Rng rng(901);
  const std::int64_t extents[] = {1, 3, 17, 64, 129};
  for (const std::int64_t m : extents) {
    for (const std::int64_t n : extents) {
      for (const std::int64_t k : extents) {
        for (const Trans trans_b : {Trans::no, Trans::yes}) {
          for (const std::int32_t alpha : {1, 2}) {
            for (const bool accumulate : {false, true}) {
              const auto a = random_s8(m * k, rng);
              const auto b = random_u8(k * n, rng);
              const std::int64_t ldb = trans_b == Trans::no ? n : k;
              std::vector<std::int32_t> expected(
                  static_cast<std::size_t>(m * n));
              std::vector<std::int32_t> actual(
                  static_cast<std::size_t>(m * n));
              if (accumulate) {
                for (std::int64_t i = 0; i < m * n; ++i) {
                  const auto seed = static_cast<std::int32_t>(
                      rng.uniform(-100.0f, 100.0f));
                  expected[static_cast<std::size_t>(i)] = seed;
                  actual[static_cast<std::size_t>(i)] = seed;
                }
              }
              reference_s8u8(trans_b, m, n, k, alpha, a.data(), b.data(),
                             ldb, accumulate, expected);
              gemm_s8u8(trans_b, m, n, k, alpha, a.data(), k, b.data(), ldb,
                        accumulate, actual.data(), n);
              ASSERT_EQ(expected, actual)
                  << "m=" << m << " n=" << n << " k=" << k
                  << " trans_b=" << (trans_b == Trans::yes) << " alpha="
                  << alpha << " accumulate=" << accumulate;
            }
          }
        }
      }
    }
  }
}

TEST(Int8Gemm, PooledIsBitIdenticalToSerial) {
  Rng rng(902);
  const std::int64_t m = 192, n = 160, k = 300;
  const auto a = random_s8(m * k, rng);
  const auto b = random_u8(k * n, rng);
  std::vector<std::int32_t> serial(static_cast<std::size_t>(m * n));
  std::vector<std::int32_t> pooled(static_cast<std::size_t>(m * n));
  gemm_s8u8(Trans::no, m, n, k, 1, a.data(), k, b.data(), n,
            /*accumulate=*/false, serial.data(), n);
  gemm_s8u8_parallel(Trans::no, m, n, k, 1, a.data(), k, b.data(), n,
                     /*accumulate=*/false, pooled.data(), n);
  EXPECT_EQ(serial, pooled);
}

TEST(Int8Gemm, Im2ColU8HandlesKernelWiderThanOutput) {
  // width=1, kernel=7, pad=3 passes validate() with out_w=1: for the outer
  // kernel columns the in-bounds window falls entirely off the output grid
  // and both fill bounds must clamp (regression: the unit-stride fast path
  // overran the buffer here).
  ConvGeometry geom;
  geom.channels = 1;
  geom.height = 1;
  geom.width = 1;
  geom.kernel_h = geom.kernel_w = 7;
  geom.stride = 1;
  geom.pad = 3;
  geom.validate();
  const std::uint8_t image[1] = {200};
  std::vector<std::uint8_t> col(
      static_cast<std::size_t>(geom.col_rows() * geom.col_cols()), 0xAA);
  std::vector<std::uint8_t> guard(64, 0x5B);  // canary after the buffer
  im2col_u8(geom, image, col.data(), /*pad_code=*/7);
  for (std::int64_t r = 0; r < geom.col_rows(); ++r) {
    // Only the center tap (ki=3, kj=3) reads the pixel; the rest is pad.
    EXPECT_EQ(col[static_cast<std::size_t>(r)], r == 24 ? 200 : 7);
  }
  for (const std::uint8_t byte : guard) EXPECT_EQ(byte, 0x5B);
}

// ------------------------------------------------------ packed weights --

WeightCodes make_codes(std::vector<std::int32_t> values, float scale,
                       int bits) {
  WeightCodes codes;
  codes.codes = std::move(values);
  codes.scale = scale;
  codes.denominator = 255.0f;
  codes.bits = bits;
  return codes;
}

TEST(PackedWeights, ShiftNormalizationAvoidsSplit) {
  // Top-3-bits codes: multiples of 32, up to 224 — int8 after the shift.
  const WeightCodes codes =
      make_codes({224, -224, 96, 0, -160, 32}, 0.5f, 3);
  runtime::PackedIntWeights packed(codes, 2, 3);
  EXPECT_EQ(packed.shift(), 5);
  EXPECT_FALSE(packed.split());
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(packed.full_code(i), codes.codes[static_cast<std::size_t>(i)]);
    // One float rounding of step * code — identical to materialize_hard.
    const float expected =
        codes.step() *
        static_cast<float>(codes.codes[static_cast<std::size_t>(i)]);
    EXPECT_EQ(packed.weight(i), expected);
  }
}

TEST(PackedWeights, FullSpanCodesSplitIntoTwoPlanes) {
  // Codes with bit 0 and bit 7 both set cannot shift into int8: split.
  const WeightCodes codes = make_codes({255, -255, 129, -129, 1, 0}, 1.0f, 8);
  runtime::PackedIntWeights packed(codes, 3, 2);
  EXPECT_EQ(packed.shift(), 0);
  EXPECT_TRUE(packed.split());
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(packed.full_code(i), codes.codes[static_cast<std::size_t>(i)]);
  }
}

TEST(PackedWeights, SplitGemmMatchesExactReference) {
  Rng rng(903);
  const std::int64_t rows = 9, cols = 31, n = 13;
  std::vector<std::int32_t> values(static_cast<std::size_t>(rows * cols));
  for (auto& v : values) {
    v = static_cast<std::int32_t>(rng.uniform(-255.0f, 255.0f));
  }
  values[0] = 255;  // force the split path
  const WeightCodes codes = make_codes(values, 0.7f, 8);
  runtime::PackedIntWeights packed(codes, rows, cols);
  ASSERT_TRUE(packed.split());

  const auto act = random_u8(cols * n, rng);
  std::vector<std::int32_t> acc(static_cast<std::size_t>(rows * n));
  packed.gemm(Trans::no, n, act.data(), n, acc.data(), n, /*pooled=*/false);

  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t expected = 0;
      for (std::int64_t p = 0; p < cols; ++p) {
        expected += static_cast<std::int64_t>(
                        values[static_cast<std::size_t>(r * cols + p)]) *
                    act[static_cast<std::size_t>(p * n + j)];
      }
      ASSERT_EQ(acc[static_cast<std::size_t>(r * n + j)], expected)
          << "r=" << r << " j=" << j;
    }
  }
}

// ------------------------------------------- integer conv2d forward -----

TEST(IntegerConv, AccumulatorsMatchExactReferenceAndFloatFinalizedPath) {
  Rng rng(904);
  const std::int64_t oc = 8, ic = 4, kernel = 3;
  CsqWeightOptions options;
  CsqWeightSource source("conv", {oc, ic, kernel, kernel}, ic * kernel * kernel,
                         options, rng);
  source.finalize();

  runtime::PackedIntWeights packed(source.finalized_codes(), oc,
                                   ic * kernel * kernel);
  ConvGeometry geom;
  geom.channels = ic;
  geom.height = 6;
  geom.width = 6;
  geom.kernel_h = geom.kernel_w = kernel;
  geom.stride = 1;
  geom.pad = 1;

  const float act_scale = 0.01f;
  const auto act = random_u8(ic * geom.height * geom.width, rng);

  // Integer path: uint8 im2col, int8-code GEMM, int32 accumulation.
  std::vector<std::uint8_t> col(
      static_cast<std::size_t>(geom.col_rows() * geom.col_cols()));
  im2col_u8(geom, act.data(), col.data(), /*pad_code=*/0);
  std::vector<std::int32_t> acc(
      static_cast<std::size_t>(oc * geom.col_cols()));
  packed.gemm(Trans::no, geom.col_cols(), col.data(), geom.col_cols(),
              acc.data(), geom.col_cols(), /*pooled=*/false);

  // Exact int64 reference over the raw codes (shift folded out).
  const std::vector<std::int32_t> raw_codes =
      source.finalized_codes().codes;
  for (std::int64_t o = 0; o < oc; ++o) {
    for (std::int64_t p = 0; p < geom.col_cols(); ++p) {
      std::int64_t expected = 0;
      for (std::int64_t r = 0; r < geom.col_rows(); ++r) {
        expected += static_cast<std::int64_t>(
                        raw_codes[static_cast<std::size_t>(
                            o * geom.col_rows() + r)] >>
                        packed.shift()) *
                    col[static_cast<std::size_t>(p + r * geom.col_cols())];
      }
      ASSERT_EQ(acc[static_cast<std::size_t>(o * geom.col_cols() + p)],
                expected);
    }
  }

  // Float finalized path: real activations through the materialized weights
  // (the eval-mode Conv2d computation) — must agree to float precision.
  Tensor real_act({ic, geom.height, geom.width});
  for (std::int64_t i = 0; i < real_act.numel(); ++i) {
    real_act[i] = act_scale * static_cast<float>(act[static_cast<std::size_t>(i)]);
  }
  std::vector<float> real_col(
      static_cast<std::size_t>(geom.col_rows() * geom.col_cols()));
  im2col(geom, real_act.data(), real_col.data());
  const Tensor& weights = source.weight(/*training=*/false);
  std::vector<float> float_out(static_cast<std::size_t>(oc * geom.col_cols()),
                               0.0f);
  gemm(Trans::no, Trans::no, oc, geom.col_cols(), geom.col_rows(), 1.0f,
       weights.data(), geom.col_rows(), real_col.data(), geom.col_cols(),
       0.0f, float_out.data(), geom.col_cols());

  const float combined = packed.effective_step() * act_scale;
  float max_rel = 0.0f;
  float max_abs_out = 0.0f;
  for (std::size_t i = 0; i < float_out.size(); ++i) {
    max_abs_out = std::max(max_abs_out, std::fabs(float_out[i]));
  }
  for (std::size_t i = 0; i < float_out.size(); ++i) {
    const float integer_value = combined * static_cast<float>(acc[i]);
    max_rel = std::max(max_rel, std::fabs(integer_value - float_out[i]));
  }
  EXPECT_LT(max_rel, 1e-4f * std::max(1.0f, max_abs_out));
}

// ------------------------------------------------------- whole graph ----

SyntheticConfig small_data_config() {
  SyntheticConfig config = SyntheticConfig::cifar_like();
  config.train_samples = 192;
  config.test_samples = 256;
  return config;
}

TEST(CompiledGraph, FinalizedResnet20EndToEnd) {
  const SyntheticDataset data = make_synthetic(small_data_config());
  Rng rng(905);
  std::vector<CsqWeightSource*> sources;
  ModelConfig model_config;
  model_config.num_classes = data.train.num_classes();
  model_config.base_width = 8;
  Model model =
      make_resnet20(model_config, csq_weight_factory(&sources),
                    fixed_act_quant_factory(/*bits=*/8), rng);

  // A few training-mode passes settle the BN running statistics and the
  // act-quant EMA clip ranges the lowering folds/pins.
  std::vector<int> indices;
  for (int i = 0; i < 64; ++i) indices.push_back(i);
  const Batch calib = data.train.gather(indices);
  for (int step = 0; step < 3; ++step) {
    model.forward(calib.images, /*training=*/true);
  }
  for (CsqWeightSource* source : sources) source->finalize();

  runtime::LowerOptions options;
  options.in_channels = data.train.channels();
  options.in_height = data.train.height();
  options.in_width = data.train.width();
  runtime::CompiledGraph graph = runtime::lower(model, options);
  graph.calibrate(calib.images);

  // 1. Weight reconstruction from the packed int8 planes is bit-exact vs
  //    the float materialization — the paper's "exact quantized model".
  for (const QuantLayer& layer : model.quant_layers()) {
    const Tensor lowered = graph.dequantized_weights(layer.name);
    const Tensor& reference = layer.source->weight(/*training=*/false);
    ASSERT_EQ(lowered.numel(), reference.numel());
    for (std::int64_t i = 0; i < reference.numel(); ++i) {
      ASSERT_EQ(lowered[i], reference[i])
          << layer.name << "[" << i << "] reconstructed inexactly";
    }
  }

  // 2. Top-1 within 1 point of the float eval path.
  const float float_accuracy = evaluate_accuracy(model, data.test, 64);
  const float int8_accuracy =
      runtime::evaluate_graph_accuracy(graph, data.test, 64);
  EXPECT_LE(std::fabs(float_accuracy - int8_accuracy), 1.0f)
      << "float " << float_accuracy << "% vs int8 " << int8_accuracy << "%";

  // 3. Serial vs pooled integer forwards are bit-identical.
  const Batch batch = data.test.gather({0, 1, 2, 3, 4, 5, 6, 7});
  graph.set_pooled(false);
  const Tensor serial_logits = graph.forward(batch.images);
  graph.set_pooled(true);
  const Tensor pooled_logits = graph.forward(batch.images);
  ASSERT_TRUE(serial_logits.same_shape(pooled_logits));
  for (std::int64_t i = 0; i < serial_logits.numel(); ++i) {
    ASSERT_EQ(serial_logits[i], pooled_logits[i]) << "logit " << i;
  }

  // 4. Layer accounting: every quant layer lowered, scheme bits recorded.
  ASSERT_EQ(graph.layers().size(), model.quant_layers().size());
  EXPECT_LT(graph.weight_storage_bits(),
            model.total_weight_count() * 32);
}

TEST(CompiledGraph, CalibratedGraphWithoutActQuantStaysClose) {
  // PTQ-style flow: no activation quantizers in the trained model; every
  // edge scale comes from calibration.
  const SyntheticDataset data = make_synthetic(small_data_config());
  Rng rng(906);
  std::vector<CsqWeightSource*> sources;
  ModelConfig model_config;
  model_config.num_classes = data.train.num_classes();
  model_config.base_width = 8;
  Model model = make_resnet20(model_config, csq_weight_factory(&sources),
                              nullptr, rng);
  std::vector<int> indices;
  for (int i = 0; i < 64; ++i) indices.push_back(i);
  const Batch calib = data.train.gather(indices);
  for (int step = 0; step < 3; ++step) {
    model.forward(calib.images, /*training=*/true);
  }
  for (CsqWeightSource* source : sources) source->finalize();

  runtime::LowerOptions options;
  options.in_channels = data.train.channels();
  options.in_height = data.train.height();
  options.in_width = data.train.width();
  runtime::CompiledGraph graph = runtime::lower(model, options);
  graph.calibrate(calib.images);

  const float float_accuracy = evaluate_accuracy(model, data.test, 64);
  const float int8_accuracy =
      runtime::evaluate_graph_accuracy(graph, data.test, 64);
  EXPECT_LE(std::fabs(float_accuracy - int8_accuracy), 2.0f)
      << "float " << float_accuracy << "% vs int8 " << int8_accuracy << "%";

  // The integer forward tracks the graph's own float reference closely
  // (8-bit edges; per-edge calibrated scales).
  const Batch batch = data.test.gather({0, 1, 2, 3});
  const Tensor reference = graph.forward_reference(batch.images);
  const Tensor integer = graph.forward(batch.images);
  EXPECT_LT(max_abs_diff(reference, integer),
            0.1f * std::max(1.0f, max_abs(reference)));
}

TEST(CompiledGraph, LowBitActQuantEdgesServeTheTrainedGrid) {
  // A 4-bit act-quant model must serve on the 15-level grid it trained
  // with, not the graph's default 255-level grid — the lowering pins both
  // the clip and the level count of the edge.
  const SyntheticDataset data = make_synthetic(small_data_config());
  Rng rng(912);
  std::vector<CsqWeightSource*> sources;
  ModelConfig model_config;
  model_config.num_classes = data.train.num_classes();
  model_config.base_width = 8;
  Model model =
      make_resnet20(model_config, csq_weight_factory(&sources),
                    fixed_act_quant_factory(/*bits=*/4), rng);
  std::vector<int> indices;
  for (int i = 0; i < 64; ++i) indices.push_back(i);
  const Batch calib = data.train.gather(indices);
  for (int step = 0; step < 3; ++step) {
    model.forward(calib.images, /*training=*/true);
  }
  for (CsqWeightSource* source : sources) source->finalize();

  runtime::LowerOptions options;
  options.in_channels = data.train.channels();
  options.in_height = data.train.height();
  options.in_width = data.train.width();
  runtime::CompiledGraph graph = runtime::lower(model, options);
  graph.calibrate(calib.images);

  const float float_accuracy = evaluate_accuracy(model, data.test, 64);
  const float int8_accuracy =
      runtime::evaluate_graph_accuracy(graph, data.test, 64);
  EXPECT_LE(std::fabs(float_accuracy - int8_accuracy), 1.0f)
      << "float " << float_accuracy << "% vs int8 " << int8_accuracy << "%";
}

TEST(CompiledGraph, LowersSteUniformAndBsqFamilies) {
  // The generic finalized-codes seam: non-CSQ fixed-grid families lower and
  // export too (the former dynamic_cast<CsqWeightSource*> rejected them).
  const SyntheticDataset data = make_synthetic(small_data_config());
  Rng rng(907);
  ModelConfig model_config;
  model_config.num_classes = data.train.num_classes();
  model_config.base_width = 4;

  Model ste_model = make_resnet20(model_config,
                                  ste_uniform_weight_factory(/*bits=*/4),
                                  nullptr, rng);
  runtime::LowerOptions options;
  options.in_channels = data.train.channels();
  options.in_height = data.train.height();
  options.in_width = data.train.width();
  runtime::CompiledGraph ste_graph = runtime::lower(ste_model, options);
  const Batch calib = data.train.gather({0, 1, 2, 3, 4, 5, 6, 7});
  ste_graph.calibrate(calib.images);
  const Tensor ste_logits = ste_graph.forward(calib.images);
  EXPECT_EQ(ste_logits.dim(0), 8);
  EXPECT_TRUE(std::isfinite(max_abs(ste_logits)));
  for (const auto& layer : ste_graph.layers()) EXPECT_EQ(layer.bits, 4);

  std::vector<BsqWeightSource*> bsq_sources;
  Model bsq_model = make_resnet20(
      model_config, bsq_weight_factory(&bsq_sources), nullptr, rng);
  runtime::CompiledGraph bsq_graph = runtime::lower(bsq_model, options);
  bsq_graph.calibrate(calib.images);
  const Tensor bsq_logits = bsq_graph.forward(calib.images);
  EXPECT_TRUE(std::isfinite(max_abs(bsq_logits)));
  // BSQ reconstruction is plane-summed floats: near-exact, not bit-exact.
  for (const QuantLayer& layer : bsq_model.quant_layers()) {
    EXPECT_LT(export_roundtrip_error(*layer.source), 1e-5f);
  }
}

TEST(CompiledGraph, RequiresFinalizedSources) {
  Rng rng(908);
  std::vector<CsqWeightSource*> sources;
  ModelConfig model_config;
  model_config.base_width = 4;
  Model model = make_resnet20(model_config, csq_weight_factory(&sources),
                              nullptr, rng);
  runtime::LowerOptions options;
  options.in_height = 16;
  options.in_width = 16;
  EXPECT_THROW(runtime::lower(model, options), check_error);

  Model dense = make_resnet20(model_config, dense_weight_factory(), nullptr,
                              rng);
  EXPECT_THROW(runtime::lower(dense, options), check_error);
}

TEST(CompiledGraph, ForwardWithoutCalibrationThrows) {
  Rng rng(909);
  std::vector<CsqWeightSource*> sources;
  ModelConfig model_config;
  model_config.base_width = 4;
  Model model = make_resnet20(model_config, csq_weight_factory(&sources),
                              nullptr, rng);
  for (CsqWeightSource* source : sources) source->finalize();
  runtime::LowerOptions options;
  options.in_height = 16;
  options.in_width = 16;
  runtime::CompiledGraph graph = runtime::lower(model, options);
  Tensor input({2, 3, 16, 16});
  EXPECT_THROW(graph.forward(input), check_error);
}

// ------------------------------------------------- buffer planner -------

TEST(CompiledGraph, LivenessPlanShrinksWorkspaceAndPreservesBits) {
  const SyntheticDataset data = make_synthetic(small_data_config());
  Rng rng(913);
  std::vector<CsqWeightSource*> sources;
  ModelConfig model_config;
  model_config.num_classes = data.train.num_classes();
  model_config.base_width = 8;
  Model model =
      make_resnet20(model_config, csq_weight_factory(&sources),
                    fixed_act_quant_factory(/*bits=*/8), rng);
  std::vector<int> indices;
  for (int i = 0; i < 32; ++i) indices.push_back(i);
  const Batch calib = data.train.gather(indices);
  for (int step = 0; step < 2; ++step) {
    model.forward(calib.images, /*training=*/true);
  }
  for (CsqWeightSource* source : sources) source->finalize();

  runtime::LowerOptions planned_options;
  planned_options.in_channels = data.train.channels();
  planned_options.in_height = data.train.height();
  planned_options.in_width = data.train.width();
  runtime::CompiledGraph planned = runtime::lower(model, planned_options);
  planned.calibrate(calib.images);

  // The one-dedicated-slot-per-edge policy of PR 3/4 is the baseline the
  // coloring must beat; both graphs replay the SAME recorded program.
  runtime::LowerOptions baseline_options = planned_options;
  baseline_options.plan_buffers = false;
  runtime::CompiledGraph baseline =
      runtime::build_graph(planned.program(), baseline_options);
  baseline.restore_edge_scales(planned.edge_scales());

  const std::int64_t batch = 16;
  planned.prepare(batch);
  baseline.prepare(batch);
  ASSERT_GT(baseline.workspace_bytes(), 0);
  // ResNet-20 keeps only a handful of edges live at once (residual forks
  // are the widest point) and all convs share one im2col stripe, so the
  // colored plan must be a small fraction of the per-edge baseline; 2x is
  // a loose floor that still catches planner regressions.
  EXPECT_LT(planned.workspace_bytes() * 2, baseline.workspace_bytes())
      << "planned " << planned.workspace_bytes() << "B vs baseline "
      << baseline.workspace_bytes() << "B";

  // Slot sharing must not change a single bit of the forward.
  const Batch batch_data = data.test.gather({0, 1, 2, 3, 4, 5, 6, 7});
  const Tensor planned_logits = planned.forward(batch_data.images);
  const Tensor baseline_logits = baseline.forward(batch_data.images);
  ASSERT_TRUE(planned_logits.same_shape(baseline_logits));
  for (std::int64_t i = 0; i < planned_logits.numel(); ++i) {
    ASSERT_EQ(planned_logits[i], baseline_logits[i]) << "logit " << i;
  }

  // Steady state stays zero-allocation under the plan: no workspace growth
  // after the first prepared forward.
  const std::uint64_t growth = planned.buffer_growth_count();
  planned.forward(batch_data.images);
  planned.forward(batch_data.images);
  EXPECT_EQ(planned.buffer_growth_count(), growth);
}

TEST(GraphArtifact, PoolAndConvHeadRecordsRoundTrip) {
  // A graph exercising every v2 record form at once: a rectangular strided
  // max pool, a padded average pool and a conv-head (GlobalAvgPool
  // terminator, no Linear). Saving and loading must reproduce the forward
  // bit for bit.
  Rng rng(914);
  Model model;
  const WeightSourceFactory factory =
      model.recording_factory(ste_uniform_weight_factory(/*bits=*/4));
  auto net = std::make_unique<Sequential>("net");
  Conv2dConfig c1;
  c1.in_channels = 3;
  c1.out_channels = 6;
  net->add(std::make_unique<Conv2d>("conv1", c1, factory, rng));
  net->add(std::make_unique<BatchNorm2d>("bn1", 6));
  net->add(std::make_unique<ReLU>("relu1"));
  net->add(std::make_unique<MaxPool2d>("pool1", Pool2dConfig{3, 2, 2, 0}));
  Conv2dConfig c2;
  c2.in_channels = 6;
  c2.out_channels = 6;
  net->add(std::make_unique<Conv2d>("conv2", c2, factory, rng));
  net->add(std::make_unique<BatchNorm2d>("bn2", 6));
  net->add(std::make_unique<ReLU>("relu2"));
  net->add(std::make_unique<AvgPool2d>("pool2", Pool2dConfig{2, 2, 2, 1}));
  net->add(std::make_unique<GlobalAvgPool>("gap"));
  model.set_root(std::move(net));

  Rng data_rng(915);
  Tensor calib = random_tensor({6, 3, 13, 11}, data_rng);
  for (int i = 0; i < 3; ++i) model.forward(calib, /*training=*/true);

  runtime::LowerOptions options;
  options.in_height = 13;
  options.in_width = 11;
  runtime::CompiledGraph graph = runtime::lower(model, options);
  graph.calibrate(calib);
  EXPECT_EQ(graph.io_shape().out_features, 6);

  const std::string path =
      ::testing::TempDir() + "csq_pool_roundtrip.csqm";
  ASSERT_TRUE(runtime::save_graph(path, graph));
  runtime::CompiledGraph loaded = runtime::load_graph(path);
  std::remove(path.c_str());

  Tensor input = random_tensor({5, 3, 13, 11}, data_rng);
  const Tensor expected = graph.forward(input);
  const Tensor actual = loaded.forward(input);
  ASSERT_TRUE(expected.same_shape(actual));
  for (std::int64_t i = 0; i < expected.numel(); ++i) {
    ASSERT_EQ(expected[i], actual[i]) << "output " << i;
  }

  // The loaded program preserves the rectangular/strided pool geometry.
  bool saw_max = false, saw_avg = false;
  for (const runtime::ProgramInstr& instr : loaded.program().instrs) {
    if (instr.kind == runtime::ProgramInstr::Kind::kMaxPool) {
      saw_max = true;
      EXPECT_EQ(instr.kernel, 3);
      EXPECT_EQ(instr.kernel_w, 2);
      EXPECT_EQ(instr.stride, 2);
    }
    if (instr.kind == runtime::ProgramInstr::Kind::kAvgPool) {
      saw_avg = true;
      EXPECT_EQ(instr.kernel, 2);
      EXPECT_EQ(instr.kernel_w, 0);  // square windows stay compact
      EXPECT_EQ(instr.pad, 1);
    }
  }
  EXPECT_TRUE(saw_max);
  EXPECT_TRUE(saw_avg);
}

namespace {

// A small finalized-CSQ stack at fixed 3-bit precision: its conv/linear
// layers earn the specialized low-bit GEMMs, exercising kernel selection,
// the force_reference_kernel escape hatch and the v3 artifact records. The
// average pool runs with count_include_pad=false (the exclude_pad record).
Model make_lowbit_model(std::vector<CsqWeightSource*>& registry, Rng& rng) {
  Model model;
  CsqWeightOptions csq_options;
  csq_options.fixed_precision = 3;
  const WeightSourceFactory factory =
      model.recording_factory(csq_weight_factory(&registry, csq_options));
  auto net = std::make_unique<Sequential>("net");
  Conv2dConfig c1;
  c1.in_channels = 3;
  c1.out_channels = 8;
  net->add(std::make_unique<Conv2d>("conv1", c1, factory, rng));
  net->add(std::make_unique<BatchNorm2d>("bn1", 8));
  net->add(std::make_unique<ReLU>("relu1"));
  net->add(std::make_unique<AvgPool2d>("pool", Pool2dConfig{3, 3, 2, 1},
                                       /*count_include_pad=*/false));
  Conv2dConfig c2;
  c2.in_channels = 8;
  c2.out_channels = 8;
  net->add(std::make_unique<Conv2d>("conv2", c2, factory, rng));
  net->add(std::make_unique<BatchNorm2d>("bn2", 8));
  net->add(std::make_unique<ReLU>("relu2"));
  net->add(std::make_unique<GlobalAvgPool>("gap"));
  net->add(std::make_unique<Flatten>("flatten"));
  net->add(std::make_unique<Linear>("fc", 8, 5, factory, rng));
  model.set_root(std::move(net));
  return model;
}

}  // namespace

TEST(CompiledGraph, ForcedReferenceKernelBitIdentical) {
  Rng rng(930);
  std::vector<CsqWeightSource*> registry;
  Model model = make_lowbit_model(registry, rng);
  Rng data_rng(931);
  Tensor calib = random_tensor({8, 3, 12, 12}, data_rng);
  for (int i = 0; i < 3; ++i) model.forward(calib, /*training=*/true);
  for (CsqWeightSource* source : registry) source->finalize();

  runtime::LowerOptions options;
  options.in_height = 12;
  options.in_width = 12;
  runtime::CompiledGraph graph = runtime::lower(model, options);
  graph.calibrate(calib);

  // The 3-bit layers must have earned a specialized kernel...
  bool saw_specialized = false;
  for (const auto& layer : graph.layers()) {
    EXPECT_FALSE(layer.kernel.empty());
    if (layer.kernel != "s8u8") saw_specialized = true;
  }
  EXPECT_TRUE(saw_specialized)
      << "3-bit layers should not run the s8u8 reference";

  // ...while the escape hatch pins everything back to the reference.
  runtime::LowerOptions forced = options;
  forced.force_reference_kernel = true;
  runtime::CompiledGraph reference =
      runtime::build_graph(graph.program(), forced);
  reference.restore_edge_scales(graph.edge_scales());
  for (const auto& layer : reference.layers()) {
    EXPECT_EQ(layer.kernel, "s8u8");
  }

  // Kernel choice changes latency, never a single bit of the logits.
  Tensor input = random_tensor({5, 3, 12, 12}, data_rng);
  const Tensor fast = graph.forward(input);
  const Tensor slow = reference.forward(input);
  ASSERT_TRUE(fast.same_shape(slow));
  for (std::int64_t i = 0; i < fast.numel(); ++i) {
    ASSERT_EQ(fast[i], slow[i]) << "logit " << i;
  }
}

TEST(GraphArtifact, KernelRecordsRoundTrip) {
  Rng rng(940);
  std::vector<CsqWeightSource*> registry;
  Model model = make_lowbit_model(registry, rng);
  Rng data_rng(941);
  Tensor calib = random_tensor({8, 3, 12, 12}, data_rng);
  for (int i = 0; i < 3; ++i) model.forward(calib, /*training=*/true);
  for (CsqWeightSource* source : registry) source->finalize();

  runtime::LowerOptions options;
  options.in_height = 12;
  options.in_width = 12;
  runtime::CompiledGraph graph = runtime::lower(model, options);
  graph.calibrate(calib);

  const std::string path =
      ::testing::TempDir() + "csq_kernel_roundtrip.csqm";
  ASSERT_TRUE(runtime::save_graph(path, graph));
  runtime::CompiledGraph loaded = runtime::load_graph(path);
  std::remove(path.c_str());

  // The v3 records replay: every conv/linear carries its resolved kernel
  // and the exclude-pad average pool keeps its divisor policy.
  bool saw_avg = false;
  std::size_t layer_index = 0;
  for (const runtime::ProgramInstr& instr : loaded.program().instrs) {
    if (instr.kind == runtime::ProgramInstr::Kind::kConv ||
        instr.kind == runtime::ProgramInstr::Kind::kLinear) {
      EXPECT_GE(instr.kernel_kind, 0) << "unresolved kernel after load";
      ASSERT_LT(layer_index, loaded.layers().size());
      EXPECT_EQ(runtime::weight_kernel_name(static_cast<runtime::WeightKernel>(
                    instr.kernel_kind)),
                loaded.layers()[layer_index].kernel);
      ++layer_index;
    }
    if (instr.kind == runtime::ProgramInstr::Kind::kAvgPool) {
      saw_avg = true;
      EXPECT_TRUE(instr.exclude_pad);
    }
  }
  EXPECT_TRUE(saw_avg);
  EXPECT_EQ(layer_index, loaded.layers().size());

  Tensor input = random_tensor({5, 3, 12, 12}, data_rng);
  const Tensor expected = graph.forward(input);
  const Tensor actual = loaded.forward(input);
  ASSERT_TRUE(expected.same_shape(actual));
  for (std::int64_t i = 0; i < expected.numel(); ++i) {
    ASSERT_EQ(expected[i], actual[i]) << "output " << i;
  }

  // Pre-kernel-record programs (v1/v2 artifacts decode kernel_kind = -1)
  // re-derive the identical choice: wipe the records and rebuild.
  runtime::GraphProgram wiped = loaded.program();
  for (runtime::ProgramInstr& instr : wiped.instrs) {
    instr.kernel_kind = -1;
  }
  runtime::CompiledGraph rederived =
      runtime::build_graph(std::move(wiped), options);
  rederived.restore_edge_scales(graph.edge_scales());
  for (std::size_t i = 0; i < rederived.layers().size(); ++i) {
    EXPECT_EQ(rederived.layers()[i].kernel, loaded.layers()[i].kernel)
        << "layer " << i << " re-derived a different kernel";
  }
  const Tensor rederived_logits = rederived.forward(input);
  for (std::int64_t i = 0; i < expected.numel(); ++i) {
    ASSERT_EQ(expected[i], rederived_logits[i]) << "output " << i;
  }
}

// ------------------------------------------------- conformance grid -----
//
// Parameterized lowering-parity sweep: a conv/bn/relu stack with an
// optional pooling layer, lowered and compared against the float eval path
// over every exportable family, the batch sizes the serving layer
// coalesces, and a curated set of shape variants — non-tiling and strided
// pools, overlapping padded windows, average pooling, non-square kernels
// and inputs, and conv-head (no-Linear) models. The pooling stride/shape
// cells and the conv-head family were enumerated GTEST_SKIPs through PR 4
// (the ROADMAP op-coverage gaps); they now run as green coverage.
// Remaining genuine gaps stay enumerated as skipped cells with their
// reasons, so closing one keeps flipping a skip into coverage.

enum class PoolKind { kNone, kMax, kAvg };

struct ConformanceCase {
  const char* tag;     // shape-variant fragment of the test name
  const char* family;  // "csq" | "bsq" | "ste_uniform"
  int batch = 1;
  int spatial_h = 12;
  int spatial_w = 12;
  PoolKind pool = PoolKind::kNone;
  int pool_kernel_h = 0;
  int pool_kernel_w = 0;
  int pool_stride = 0;
  int pool_pad = 0;
  bool conv_head = false;        // end at GlobalAvgPool, no Linear
  bool avg_exclude_pad = false;  // avg pool divides by valid-tap count
  const char* skip_reason = nullptr;  // non-null: a remaining genuine gap
};

std::vector<ConformanceCase> conformance_grid() {
  // One entry per shape variant; the grid takes the product with the three
  // exportable families and the serving batch sizes.
  const ConformanceCase variants[] = {
      {"nopool_s12"},
      {"nopool_s11", "", 0, 11, 11},
      {"max2s2_s12", "", 0, 12, 12, PoolKind::kMax, 2, 2, 2, 0},
      // Formerly-skipped cells: stride-2 / stride-3 windows that do not
      // tile an 11x11 map (floor output grid drops the trailing rows).
      {"max2s2_s11", "", 0, 11, 11, PoolKind::kMax, 2, 2, 2, 0},
      {"max3s3_s11", "", 0, 11, 11, PoolKind::kMax, 3, 3, 3, 0},
      // Overlapping strided window with padding (the ResNet-stem shape).
      {"max3s2p1_s12", "", 0, 12, 12, PoolKind::kMax, 3, 3, 2, 1},
      // Average pooling: tiling, and padded/strided on a non-square input.
      {"avg2s2_s12", "", 0, 12, 12, PoolKind::kAvg, 2, 2, 2, 0},
      {"avg3s2p1_s11x13", "", 0, 11, 13, PoolKind::kAvg, 3, 3, 2, 1},
      // Formerly-skipped cell: count_include_pad=false — border windows
      // divide by their valid-tap count (per-position requant divisors).
      {"avg3s2p1_s12_xpad", "", 0, 12, 12, PoolKind::kAvg, 3, 3, 2, 1,
       false, true},
      {"avg3s2p1_s11x13_xpad", "", 0, 11, 13, PoolKind::kAvg, 3, 3, 2, 1,
       false, true},
      // Non-square pool kernel.
      {"max3x2s2_s12", "", 0, 12, 12, PoolKind::kMax, 3, 2, 2, 0},
      // Conv-head models: GlobalAvgPool terminates the graph.
      {"convhead_s12", "", 0, 12, 12, PoolKind::kNone, 0, 0, 0, 0, true},
      {"convhead_avg2s2_s11", "", 0, 11, 11, PoolKind::kAvg, 2, 2, 2, 0,
       true},
  };
  std::vector<ConformanceCase> cases;
  for (const ConformanceCase& variant : variants) {
    for (const char* family : {"csq", "bsq", "ste_uniform"}) {
      for (const int batch : {1, 3, 17}) {
        ConformanceCase entry = variant;
        entry.family = family;
        entry.batch = batch;
        cases.push_back(entry);
      }
    }
  }
  // Remaining genuine gaps, enumerated once each so the grid keeps naming
  // what the runtime cannot serve yet.
  ConformanceCase rect_conv;
  rect_conv.tag = "rect_conv_kernel";
  rect_conv.family = "csq";
  rect_conv.skip_reason =
      "non-square CONV kernels: Conv2dConfig and the kConv program record "
      "carry one square kernel extent (pool kernels are rectangular now; "
      "conv kernels are not)";
  cases.push_back(rect_conv);
  ConformanceCase ceil_mode;
  ceil_mode.tag = "ceil_mode_pool";
  ceil_mode.family = "csq";
  ceil_mode.skip_reason =
      "ceil-mode pooling output grids: Pool2dConfig uses floor division "
      "(trailing partial windows are dropped, not padded)";
  cases.push_back(ceil_mode);
  return cases;
}

std::string conformance_name(
    const ::testing::TestParamInfo<ConformanceCase>& info) {
  const ConformanceCase& param = info.param;
  if (param.skip_reason != nullptr) return std::string("gap_") + param.tag;
  std::string name = param.family;
  name += "_b" + std::to_string(param.batch);
  name += "_";
  name += param.tag;
  return name;
}

class RuntimeConformance
    : public ::testing::TestWithParam<ConformanceCase> {};

TEST_P(RuntimeConformance, LoweringParityWithFloatEval) {
  const ConformanceCase& param = GetParam();
  if (param.skip_reason != nullptr) {
    GTEST_SKIP() << "runtime op-coverage gap: " << param.skip_reason;
  }
  const std::int64_t spatial_h = param.spatial_h;
  const std::int64_t spatial_w = param.spatial_w;

  Rng rng(1300);
  Model model;
  std::vector<CsqWeightSource*> csq_registry;
  std::vector<BsqWeightSource*> bsq_registry;
  WeightSourceFactory base;
  if (std::string(param.family) == "csq") {
    CsqWeightOptions options;
    options.fixed_precision = 3;
    base = csq_weight_factory(&csq_registry, options);
  } else if (std::string(param.family) == "bsq") {
    base = bsq_weight_factory(&bsq_registry);
  } else {
    base = ste_uniform_weight_factory(/*bits=*/4);
  }
  const WeightSourceFactory factory = model.recording_factory(std::move(base));

  auto net = std::make_unique<Sequential>("net");
  Conv2dConfig c1;
  c1.in_channels = 3;
  c1.out_channels = 8;
  net->add(std::make_unique<Conv2d>("conv1", c1, factory, rng));
  net->add(std::make_unique<BatchNorm2d>("bn1", 8));
  net->add(std::make_unique<ReLU>("relu1"));
  if (param.pool != PoolKind::kNone) {
    Pool2dConfig pool_config;
    pool_config.kernel_h = param.pool_kernel_h;
    pool_config.kernel_w = param.pool_kernel_w;
    pool_config.stride = param.pool_stride;
    pool_config.pad = param.pool_pad;
    if (param.pool == PoolKind::kMax) {
      net->add(std::make_unique<MaxPool2d>("pool", pool_config));
    } else {
      net->add(std::make_unique<AvgPool2d>(
          "pool", pool_config,
          /*count_include_pad=*/!param.avg_exclude_pad));
    }
  }
  Conv2dConfig c2;
  c2.in_channels = 8;
  c2.out_channels = 8;
  c2.stride = 2;
  net->add(std::make_unique<Conv2d>("conv2", c2, factory, rng));
  net->add(std::make_unique<BatchNorm2d>("bn2", 8));
  net->add(std::make_unique<ReLU>("relu2"));
  net->add(std::make_unique<GlobalAvgPool>("gap"));
  if (!param.conv_head) {
    net->add(std::make_unique<Flatten>("flatten"));
    net->add(std::make_unique<Linear>("fc", 8, 5, factory, rng));
  }
  model.set_root(std::move(net));

  runtime::LowerOptions options;
  options.in_height = spatial_h;
  options.in_width = spatial_w;

  // Settle the BN running statistics the lowering folds.
  Rng data_rng(1400 + param.spatial_h + param.spatial_w);
  Tensor calib = random_tensor({8, 3, spatial_h, spatial_w}, data_rng);
  for (int i = 0; i < 3; ++i) model.forward(calib, /*training=*/true);
  for (CsqWeightSource* source : csq_registry) source->finalize();

  runtime::CompiledGraph graph = runtime::lower(model, options);

  Tensor input =
      random_tensor({param.batch, 3, spatial_h, spatial_w}, data_rng);
  // Calibrate over both batches so every edge's observed range covers the
  // served inputs (ranges accumulate across calls) — the PTQ deployment
  // contract the tolerance below assumes.
  graph.calibrate(calib);
  graph.calibrate(input);
  // Float eval path vs the graph's float reference walk: folded BN and
  // dequantized (bit-exact / near-exact) weights must track the module
  // tree closely.
  const Tensor eval = model.forward(input, /*training=*/false);
  const Tensor reference = graph.forward_reference(input);
  ASSERT_TRUE(eval.same_shape(reference));
  EXPECT_LT(max_abs_diff(eval, reference),
            1e-2f * std::max(1.0f, max_abs(eval)));

  // Integer path vs the reference: activation-quantization error only.
  graph.set_pooled(false);
  const Tensor serial = graph.forward(input);
  EXPECT_LT(max_abs_diff(serial, reference),
            0.1f * std::max(1.0f, max_abs(reference)));

  // Serial and pooled integer forwards are bit-identical.
  graph.set_pooled(true);
  const Tensor pooled = graph.forward(input);
  ASSERT_TRUE(serial.same_shape(pooled));
  for (std::int64_t i = 0; i < serial.numel(); ++i) {
    ASSERT_EQ(serial[i], pooled[i]) << "logit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RuntimeConformance,
                         ::testing::ValuesIn(conformance_grid()),
                         conformance_name);

// ------------------------------------------------- packed-weights fuzz ---

TEST(PackedWeightsFuzz, SeededRandomGridsReconstructBitExactly) {
  Rng rng(5001);
  for (int trial = 0; trial < 120; ++trial) {
    const auto rows = 1 + static_cast<std::int64_t>(rng.uniform(0.0f, 5.9f));
    const auto cols = 1 + static_cast<std::int64_t>(rng.uniform(0.0f, 47.9f));
    const int mode = trial % 4;
    std::vector<std::int32_t> values(static_cast<std::size_t>(rows * cols));
    for (auto& v : values) {
      switch (mode) {
        case 0:  // all-zero plane (shift degenerates, codes stay exact)
          v = 0;
          break;
        case 1:  // full span, |code| up to 255 (forces the 2*hi+lo split)
          v = static_cast<std::int32_t>(rng.uniform(-255.9f, 255.9f));
          break;
        case 2:  // multiples of 4: the power-of-two shift path
          v = 4 * static_cast<std::int32_t>(rng.uniform(-63.9f, 63.9f));
          break;
        default: {  // sparse single-bit planes with zeros sprinkled in
          const int bit = static_cast<int>(rng.uniform(0.0f, 7.99f));
          v = (rng.uniform(-1.0f, 1.0f) < 0.0f ? -1 : 1) * (1 << bit);
          if (rng.uniform(0.0f, 1.0f) < 0.3f) v = 0;
          break;
        }
      }
    }
    if (mode == 1) values.front() = 255;  // pin the span's extreme
    const WeightCodes codes =
        make_codes(values, 0.1f + rng.uniform(0.0f, 2.0f), 8);
    runtime::PackedIntWeights packed(codes, rows, cols);
    for (std::int64_t i = 0; i < rows * cols; ++i) {
      ASSERT_EQ(packed.full_code(i),
                values[static_cast<std::size_t>(i)])
          << "trial " << trial << " element " << i;
      // Bit-exact float reconstruction: one rounding of step * code, the
      // same operation materialize_hard performs.
      ASSERT_EQ(packed.weight(i),
                codes.step() *
                    static_cast<float>(values[static_cast<std::size_t>(i)]))
          << "trial " << trial << " element " << i;
    }
    if (trial % 6 == 0) {
      // Drive the packed planes through the GEMM (split trials chain the
      // hi/lo passes through alpha) against an exact int64 reference. The
      // accumulator is in stored-plane units: the power-of-two shift is
      // folded into effective_step(), so the reference uses code >> shift.
      const std::int64_t n = 1 + static_cast<std::int64_t>(
          rng.uniform(0.0f, 6.9f));
      const auto acts = random_u8(cols * n, rng);
      std::vector<std::int32_t> acc(static_cast<std::size_t>(rows * n));
      packed.gemm(Trans::no, n, acts.data(), n, acc.data(), n,
                  /*pooled=*/false);
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t j = 0; j < n; ++j) {
          std::int64_t expected = 0;
          for (std::int64_t p = 0; p < cols; ++p) {
            expected +=
                static_cast<std::int64_t>(
                    values[static_cast<std::size_t>(r * cols + p)] >>
                    packed.shift()) *
                acts[static_cast<std::size_t>(p * n + j)];
          }
          ASSERT_EQ(acc[static_cast<std::size_t>(r * n + j)], expected)
              << "trial " << trial << " r=" << r << " j=" << j;
        }
      }
    }
  }
}

TEST(PackedWeightsFuzz, RejectsReductionDepthsBeyondInt32Headroom) {
  // The exactness bound (worst split contribution 65535 per depth step)
  // requires k <= 32767; both the packer and the raw GEMM entry points
  // must refuse anything larger.
  std::vector<std::int32_t> values(32768, 1);
  EXPECT_THROW(
      runtime::PackedIntWeights(make_codes(values, 1.0f, 8), 1, 32768),
      check_error);

  std::vector<std::int8_t> a(1, 1);
  std::vector<std::uint8_t> b(1, 1);
  std::int32_t c = 0;
  EXPECT_THROW(gemm_s8u8(Trans::no, 1, 1, 32768, 1, a.data(), 32768,
                         b.data(), 1, /*accumulate=*/false, &c, 1),
               check_error);

  // The boundary itself is legal.
  values.resize(32767);
  runtime::PackedIntWeights packed(make_codes(values, 1.0f, 8), 1, 32767);
  EXPECT_EQ(packed.cols(), 32767);
}

TEST(CompiledGraph, LowersVgg19WithMaxPools) {
  // VGG exercises the maxpool lowering and deep conv/bn/relu chains.
  Rng rng(910);
  ModelConfig model_config;
  model_config.base_width = 4;
  model_config.num_classes = 10;
  Model model = make_vgg19bn(model_config,
                             ste_uniform_weight_factory(/*bits=*/4), nullptr,
                             rng);
  runtime::LowerOptions options;
  options.in_height = 32;
  options.in_width = 32;
  runtime::CompiledGraph graph = runtime::lower(model, options);

  Rng data_rng(911);
  Tensor images = random_tensor({4, 3, 32, 32}, data_rng);
  graph.calibrate(images);
  graph.set_pooled(false);
  const Tensor serial = graph.forward(images);
  graph.set_pooled(true);
  const Tensor pooled = graph.forward(images);
  for (std::int64_t i = 0; i < serial.numel(); ++i) {
    ASSERT_EQ(serial[i], pooled[i]);
  }
  EXPECT_EQ(serial.dim(1), 10);
}

}  // namespace
}  // namespace csq
