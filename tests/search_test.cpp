// Tests for src/search: sensitivity profiling, greedy budgeted assignment,
// evolutionary search.
#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "quant/quantizer.h"
#include "nn/models.h"
#include "opt/trainer.h"
#include "search/assignment.h"
#include "search/evo_search.h"
#include "search/sensitivity.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace csq {
namespace {

SyntheticConfig tiny_config() {
  SyntheticConfig config;
  config.num_classes = 4;
  config.train_samples = 96;
  config.test_samples = 64;
  config.height = 8;
  config.width = 8;
  config.noise_stddev = 0.3f;
  config.seed = 20;
  return config;
}

// A small pretrained model shared by the profiling tests.
struct Pretrained {
  Model model;
  SyntheticDataset data;
};

Pretrained make_pretrained() {
  Pretrained out;
  out.data = make_synthetic(tiny_config());
  Rng rng(21);
  ModelConfig model_config;
  model_config.num_classes = 4;
  model_config.base_width = 4;
  out.model = make_resnet20(model_config, dense_weight_factory(), nullptr,
                            rng);
  TrainConfig config;
  config.epochs = 6;
  config.batch_size = 32;
  config.learning_rate = 0.05f;
  fit(out.model, out.data.train, out.data.test, config);
  return out;
}

TEST(Sensitivity, ProfileShapesAndMonotonicity) {
  Pretrained pre = make_pretrained();
  const SensitivityProfile profile =
      profile_sensitivity(pre.model, pre.data.train, 8, 64);

  ASSERT_EQ(profile.sensitivity.size(), pre.model.quant_layers().size());
  ASSERT_EQ(profile.layer_names.size(), profile.sensitivity.size());
  ASSERT_EQ(profile.layer_sizes.size(), profile.sensitivity.size());

  double total_1bit = 0.0, total_8bit = 0.0;
  for (const auto& per_bits : profile.sensitivity) {
    ASSERT_EQ(per_bits.size(), 8u);
    for (const double value : per_bits) EXPECT_GE(value, 0.0);
    total_1bit += per_bits[0];
    total_8bit += per_bits[7];
  }
  // Aggregate monotonicity: 1-bit quantization hurts more than 8-bit over
  // the whole network (individual layers can be noisy on the small
  // calibration subset).
  EXPECT_GT(total_1bit, total_8bit);
}

TEST(Sensitivity, ProfilingRestoresWeights) {
  Pretrained pre = make_pretrained();
  const std::vector<Tensor> before = backup_dense_weights(pre.model);
  profile_sensitivity(pre.model, pre.data.train, 4, 64);
  const std::vector<Tensor> after = backup_dense_weights(pre.model);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(max_abs_diff(before[i], after[i]), 0.0f);
  }
}

TEST(Sensitivity, BackupRestoreRoundTrip) {
  Pretrained pre = make_pretrained();
  std::vector<Tensor> backup = backup_dense_weights(pre.model);
  auto* dense =
      dynamic_cast<DenseWeightSource*>(pre.model.quant_layers()[0].source);
  dense->parameter().value.fill(0.0f);
  restore_dense_weights(pre.model, backup);
  EXPECT_GT(max_abs(dense->parameter().value), 0.0f);
}

// Synthetic profile for deterministic assignment tests.
SensitivityProfile synthetic_profile() {
  SensitivityProfile profile;
  profile.layer_names = {"cheap", "pricey", "huge"};
  profile.layer_sizes = {100, 100, 800};
  // sensitivity[l][b-1], decreasing in b. "pricey" is very sensitive,
  // "cheap" barely, "huge" moderately.
  profile.sensitivity = {
      {0.08, 0.04, 0.02, 0.01, 0.005, 0.002, 0.001, 0.0},
      {8.0, 4.0, 2.0, 1.0, 0.5, 0.2, 0.1, 0.0},
      {0.8, 0.4, 0.2, 0.1, 0.05, 0.02, 0.01, 0.0},
  };
  return profile;
}

TEST(Assignment, MeetsBudgetAndKeepsSensitiveLayersHigh) {
  const SensitivityProfile profile = synthetic_profile();
  const BitAssignment assignment = assign_bits_greedy(profile, 4.0);
  EXPECT_LE(assignment.average_bits, 4.0 + 1e-9);
  // The very sensitive layer must keep more bits than the cheap one.
  EXPECT_GT(assignment.bits[1], assignment.bits[0]);
}

TEST(Assignment, AverageBitsIsElementWeighted) {
  EXPECT_NEAR(assignment_average_bits({2, 8}, {300, 100}), 3.5, 1e-12);
}

TEST(Assignment, RespectsMinBits) {
  const SensitivityProfile profile = synthetic_profile();
  const BitAssignment assignment =
      assign_bits_greedy(profile, 2.0, /*min_bits=*/2);
  for (const int bits : assignment.bits) EXPECT_GE(bits, 2);
}

TEST(Assignment, LooseBudgetKeepsEverythingAtMax) {
  const SensitivityProfile profile = synthetic_profile();
  const BitAssignment assignment = assign_bits_greedy(profile, 8.0);
  for (const int bits : assignment.bits) EXPECT_EQ(bits, 8);
}

TEST(Assignment, MismatchedSizesThrow) {
  EXPECT_THROW(assignment_average_bits({1, 2}, {10}), check_error);
}

TEST(Assignment, ApplyPtqSnapsToPerLayerGrids) {
  Pretrained pre = make_pretrained();
  std::vector<int> bits(pre.model.quant_layers().size(), 3);
  apply_assignment_ptq(pre.model, bits);
  auto* dense =
      dynamic_cast<DenseWeightSource*>(pre.model.quant_layers()[0].source);
  const Tensor& w = dense->parameter().value;
  const float scale = max_abs_scale(w);
  for (std::int64_t i = 0; i < std::min<std::int64_t>(w.numel(), 30); ++i) {
    const float grid = w[i] / scale * 7.0f;
    EXPECT_NEAR(grid, std::round(grid), 1e-2f);
  }
}

TEST(EvoSearch, MeetsBudgetAndDoesNotRegress) {
  Pretrained pre = make_pretrained();
  const SensitivityProfile profile =
      profile_sensitivity(pre.model, pre.data.train, 8, 64);

  EvoSearchConfig config;
  config.population = 6;
  config.generations = 3;
  config.target_bits = 4.0;
  config.fitness_samples = 64;
  const EvoSearchResult result =
      evolutionary_search(pre.model, pre.data.test, profile, config);

  EXPECT_LE(result.average_bits, 4.0 + 1e-9);
  EXPECT_EQ(result.best_bits.size(), profile.sensitivity.size());
  // History is monotone non-decreasing (elitism).
  for (std::size_t g = 1; g < result.history.size(); ++g) {
    EXPECT_GE(result.history[g], result.history[g - 1] - 1e-9);
  }
  EXPECT_GT(result.best_fitness, 25.0);  // meaningfully above random (4 cls)
}

TEST(EvoSearch, RestoresModelWeights) {
  Pretrained pre = make_pretrained();
  const SensitivityProfile profile =
      profile_sensitivity(pre.model, pre.data.train, 4, 64);
  const std::vector<Tensor> before = backup_dense_weights(pre.model);

  EvoSearchConfig config;
  config.population = 4;
  config.generations = 2;
  config.target_bits = 4.0;
  config.fitness_samples = 32;
  evolutionary_search(pre.model, pre.data.test, profile, config);

  const std::vector<Tensor> after = backup_dense_weights(pre.model);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(max_abs_diff(before[i], after[i]), 0.0f);
  }
}

}  // namespace
}  // namespace csq
