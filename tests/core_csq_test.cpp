// Tests for the CSQ weight parameterization (paper Eq. 3/4/5): closed-form
// forward, analytic gradients vs numeric differences, precision accounting,
// budget regularizer direction, freeze/finalize semantics and the
// exactness-of-finalized-weights property.
#include <cmath>

#include <gtest/gtest.h>

#include "core/budget.h"
#include "core/csq_weight.h"
#include "core/export.h"
#include "tensor/ops.h"
#include "test_helpers.h"
#include "util/check.h"

namespace csq {
namespace {

using testing::expect_close;
using testing::numeric_derivative;
using testing::probe_loss;
using testing::random_tensor;

CsqWeightSource make_source(Rng& rng, int fixed_precision = 0,
                            std::vector<std::int64_t> shape = {3, 4}) {
  CsqWeightOptions options;
  options.fixed_precision = fixed_precision;
  return CsqWeightSource("layer", std::move(shape), 4, options, rng);
}

// Hand-computed Eq. (5) on the source's own parameters.
Tensor reference_weight(CsqWeightSource& source, float beta) {
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  // Layout from collect_parameters: s, (mp0, mn0) ... (mp7, mn7), mB.
  Parameter* scale = params[0];
  Parameter* mask = params.back();
  const std::int64_t count = source.weight_count();
  Tensor expected({count});
  for (std::int64_t i = 0; i < count; ++i) {
    double acc = 0.0;
    for (int b = 0; b < 8; ++b) {
      const float mp = params[1 + 2 * b]->value[i];
      const float mn = params[2 + 2 * b]->value[i];
      acc += (gate(mp, beta) - gate(mn, beta)) * std::pow(2.0, b) *
             gate(mask->value[b], beta);
    }
    expected[i] =
        static_cast<float>(scale->value[0] / 255.0 * acc);
  }
  return expected;
}

TEST(CsqWeight, ForwardMatchesEquationFive) {
  Rng rng(60);
  CsqWeightSource source = make_source(rng);
  for (float beta : {1.0f, 4.0f, 30.0f}) {
    source.set_beta(beta);
    const Tensor& materialized = source.weight(/*training=*/false);
    Tensor expected = reference_weight(source, beta);
    float max_diff = 0.0f;
    for (std::int64_t i = 0; i < materialized.numel(); ++i) {
      max_diff = std::max(max_diff,
                          std::fabs(materialized[i] - expected[i]));
    }
    EXPECT_LT(max_diff, 1e-5f) << "beta=" << beta;
  }
}

TEST(CsqWeight, InitializationApproximatesHeDenseUnderHardGates) {
  // With hard gates the decomposed initialization reproduces an 8-bit
  // quantization of the dense init: weights should span a reasonable range.
  Rng rng(61);
  CsqWeightSource source = make_source(rng, 0, {16, 16});
  source.set_beta(5000.0f);  // effectively hard
  const Tensor& w = source.weight(false);
  EXPECT_GT(max_abs(w), 0.1f);  // He std for fan_in=4 is ~0.7
  EXPECT_GT(squared_norm(w), 0.0f);
}

// Analytic gradients against numeric differences for every variable class
// (s, m_p, m_n, m_B), across temperatures.
class CsqGradTest : public ::testing::TestWithParam<float> {};

TEST_P(CsqGradTest, AllParameterGradientsMatchNumeric) {
  const float beta = GetParam();
  Rng rng(62);
  CsqWeightSource source = make_source(rng);
  source.set_beta(beta);

  Tensor probe = random_tensor({3, 4}, rng);
  source.weight(/*training=*/true);
  source.backward(probe);

  std::vector<Parameter*> params;
  source.collect_parameters(params);
  for (Parameter* param : params) {
    for (std::int64_t index = 0; index < std::min<std::int64_t>(
                                             param->value.numel(), 3);
         ++index) {
      const float original = param->value[index];
      const double numeric = numeric_derivative(
          [&](float x) {
            param->value[index] = x;
            param->mark_updated();  // direct-mutation contract
            const Tensor& w = source.weight(/*training=*/false);
            return static_cast<double>(probe_loss(w, probe));
          },
          original, 1e-3f);
      param->value[index] = original;
      param->mark_updated();
      SCOPED_TRACE(param->name + "[" + std::to_string(index) + "] beta=" +
                   std::to_string(beta));
      expect_close(param->grad[index], numeric, 5e-2, 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, CsqGradTest,
                         ::testing::Values(1.0f, 3.0f, 8.0f));

TEST(CsqWeight, FixedPrecisionMaskSelectsTopBits) {
  Rng rng(63);
  CsqWeightSource source = make_source(rng, /*fixed_precision=*/3);
  EXPECT_EQ(source.layer_precision(), 3);
  EXPECT_DOUBLE_EQ(source.bits_per_weight(), 3.0);
  // Mask gradient must never flow in fixed-precision mode.
  source.set_beta(2.0f);
  Tensor probe = random_tensor({3, 4}, rng);
  source.weight(true);
  source.backward(probe);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  Parameter* mask = params.back();
  for (int b = 0; b < 8; ++b) EXPECT_FLOAT_EQ(mask->grad[b], 0.0f);
}

TEST(CsqWeight, FixedPrecisionSpansUsefulDynamicRange) {
  // Top-bit selection keeps the representable range within ~25% of the full
  // scale (the regression behind the CSQ-Uniform fix; lowest-bit selection
  // would shrink it by ~100x at 2 bits).
  Rng rng(64);
  CsqWeightSource source = make_source(rng, /*fixed_precision=*/2, {8, 8});
  source.set_beta(5000.0f);
  const Tensor& w = source.weight(false);
  EXPECT_GT(max_abs(w), 0.5f * source.scale());
}

TEST(CsqWeight, PrecisionCountsNonNegativeMaskLogits) {
  Rng rng(65);
  CsqWeightSource source = make_source(rng);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  Parameter* mask = params.back();
  for (int b = 0; b < 8; ++b) mask->value[b] = (b % 2 == 0) ? 0.5f : -0.5f;
  EXPECT_EQ(source.layer_precision(), 4);
  mask->value[1] = 0.0f;  // boundary counts as active: I(m >= 0)
  EXPECT_EQ(source.layer_precision(), 5);
}

TEST(CsqWeight, BudgetRegularizerGradientDirection) {
  Rng rng(66);
  CsqWeightSource source = make_source(rng);
  source.set_beta(2.0f);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  Parameter* mask = params.back();

  // Positive strength (model above budget) pushes every mask logit down.
  source.add_budget_regularizer_gradient(0.5f);
  for (int b = 0; b < 8; ++b) EXPECT_GT(mask->grad[b], 0.0f);  // grad desc -> down
  mask->zero_grad();
  // Negative strength (below budget) grows precision.
  source.add_budget_regularizer_gradient(-0.5f);
  for (int b = 0; b < 8; ++b) EXPECT_LT(mask->grad[b], 0.0f);
}

TEST(CsqWeight, BudgetRegularizerMatchesDerivativeOfEqSix) {
  Rng rng(67);
  CsqWeightSource source = make_source(rng);
  source.set_beta(3.0f);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  Parameter* mask = params.back();
  source.add_budget_regularizer_gradient(1.0f);
  for (int b = 0; b < 8; ++b) {
    // d/dm [ f_beta(m) ] = beta * f * (1 - f).
    EXPECT_NEAR(mask->grad[b], gate_derivative(mask->value[b], 3.0f), 1e-5f);
  }
}

TEST(CsqWeight, FreezeMaskStopsMaskTrainingButKeepsBitTraining) {
  Rng rng(68);
  CsqWeightSource source = make_source(rng);
  source.set_beta(2.0f);
  source.freeze_mask();
  EXPECT_EQ(source.mode(), CsqMode::finetune);

  Tensor probe = random_tensor({3, 4}, rng);
  source.weight(true);
  source.backward(probe);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  Parameter* mask = params.back();
  for (int b = 0; b < 8; ++b) EXPECT_FLOAT_EQ(mask->grad[b], 0.0f);
  // Bit-representation gradients still flow for active bits.
  float bit_grad_total = 0.0f;
  for (int b = 0; b < 8; ++b) {
    bit_grad_total += max_abs(params[1 + 2 * b]->grad);
  }
  EXPECT_GT(bit_grad_total, 0.0f);
  // Budget regularizer becomes a no-op.
  source.add_budget_regularizer_gradient(1.0f);
  for (int b = 0; b < 8; ++b) EXPECT_FLOAT_EQ(mask->grad[b], 0.0f);
}

TEST(CsqWeight, FreezeMaskPreservesHardPrecision) {
  Rng rng(69);
  CsqWeightSource source = make_source(rng);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  Parameter* mask = params.back();
  for (int b = 0; b < 8; ++b) mask->value[b] = b < 5 ? 0.4f : -0.4f;
  const int before = source.layer_precision();
  source.freeze_mask();
  EXPECT_EQ(source.layer_precision(), before);
  // Changing logits after the freeze no longer changes the precision.
  mask->value[7] = 10.0f;
  EXPECT_EQ(source.layer_precision(), before);
}

TEST(CsqWeight, FinalizedWeightsAreExactlyOnTheGrid) {
  Rng rng(70);
  CsqWeightSource source = make_source(rng, 0, {6, 6});
  source.set_beta(50.0f);
  source.finalize();
  EXPECT_EQ(source.mode(), CsqMode::finalized);

  const Tensor& w = source.weight(false);
  const float factor = source.scale() / 255.0f;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    const float code = w[i] / factor;
    // Exact: the materialization is factor * integer, no epsilon needed
    // beyond float division round-off.
    EXPECT_EQ(w[i], factor * std::round(code));
  }
}

TEST(CsqWeight, ExportRoundtripIsBitExact) {
  Rng rng(71);
  CsqWeightSource source = make_source(rng, 0, {10, 10});
  source.finalize();
  EXPECT_EQ(export_roundtrip_error(source), 0.0f);
}

TEST(CsqWeight, IntegerCodesRespectMaskAndRange) {
  Rng rng(72);
  CsqWeightSource source = make_source(rng, /*fixed_precision=*/2, {8, 8});
  source.finalize();
  const std::vector<std::int32_t> codes = source.integer_codes();
  for (const std::int32_t code : codes) {
    EXPECT_LE(std::abs(code), 255);
    // Only the top two bits participate: code must be a multiple of 64.
    EXPECT_EQ(code % 64, 0);
  }
}

// The gate values cached by a training materialization are only valid at the
// temperature/mask state they were computed under. Mutating either between
// forward and backward must assert, not silently mix temperatures.
TEST(CsqWeight, SetBetaBetweenForwardAndBackwardInvalidatesCache) {
  Rng rng(90);
  CsqWeightSource source = make_source(rng);
  source.set_beta(2.0f);
  source.weight(/*training=*/true);
  source.set_beta(4.0f);  // stale gates: cached at beta=2
  EXPECT_THROW(source.backward(Tensor({3, 4})), check_error);
}

TEST(CsqWeight, RedundantSetBetaKeepsCacheValid) {
  Rng rng(91);
  CsqWeightSource source = make_source(rng);
  source.set_beta(2.0f);
  source.weight(/*training=*/true);
  source.set_beta(2.0f);  // no-op: gates still match
  Tensor probe = random_tensor({3, 4}, rng);
  EXPECT_NO_THROW(source.backward(probe));
}

TEST(CsqWeight, FreezeMaskBetweenForwardAndBackwardInvalidatesCache) {
  Rng rng(92);
  CsqWeightSource source = make_source(rng);
  source.set_beta(2.0f);
  source.weight(/*training=*/true);
  source.freeze_mask();  // mask values and plane staging are now stale
  EXPECT_THROW(source.backward(Tensor({3, 4})), check_error);
}

TEST(CsqWeight, BackwardOnFinalizedSourceThrows) {
  Rng rng(73);
  CsqWeightSource source = make_source(rng);
  source.finalize();
  source.weight(false);
  EXPECT_THROW(source.backward(Tensor({3, 4})), check_error);
}

TEST(CsqWeight, IntegerCodesRequireFinalizedMode) {
  Rng rng(74);
  CsqWeightSource source = make_source(rng);
  EXPECT_THROW(source.integer_codes(), check_error);
}

// ---------------------------------------------------------------- budget --

TEST(Budget, AveragePrecisionIsElementWeighted) {
  Rng rng(75);
  CsqWeightOptions small_opts;
  small_opts.fixed_precision = 2;
  CsqWeightOptions big_opts;
  big_opts.fixed_precision = 8;
  CsqWeightSource small("small", {2, 2}, 2, small_opts, rng);    // 4 elems
  CsqWeightSource big("big", {6, 6}, 6, big_opts, rng);          // 36 elems
  const double avg = average_precision({&small, &big});
  EXPECT_NEAR(avg, (2.0 * 4 + 8.0 * 36) / 40.0, 1e-9);
}

TEST(Budget, DeltaSignMatchesPaperSemantics) {
  Rng rng(76);
  CsqWeightOptions opts;
  opts.fixed_precision = 4;
  CsqWeightSource source("s", {3, 3}, 3, opts, rng);
  EXPECT_GT(budget_delta({&source}, 3.0), 0.0);  // above budget -> prune
  EXPECT_LT(budget_delta({&source}, 5.0), 0.0);  // below budget -> grow
  EXPECT_NEAR(budget_delta({&source}, 4.0), 0.0, 1e-12);
}

TEST(Budget, LayerPrecisionsReportNamesAndCounts) {
  Rng rng(77);
  CsqWeightOptions opts;
  opts.fixed_precision = 3;
  CsqWeightSource source("conv1", {2, 3}, 3, opts, rng);
  const auto layers = layer_precisions({{"conv1", &source}});
  ASSERT_EQ(layers.size(), 1u);
  EXPECT_EQ(layers[0].name, "conv1");
  EXPECT_EQ(layers[0].bits, 3);
  EXPECT_EQ(layers[0].weight_count, 6);
}

// ---------------------------------------------------------------- export --

TEST(Export, StorageBitsAccounting) {
  QuantizedLayerExport layer;
  layer.codes.assign(100, 0);
  layer.bits = 3;
  // Codes plus the two per-layer floats of the v2 container (scale +
  // grid denominator).
  EXPECT_EQ(layer.storage_bits(), 100 * 3 + 64);
}

TEST(Export, IntegerLinearForwardMatchesReference) {
  Rng rng(78);
  CsqWeightOptions opts;
  CsqWeightSource source("fc", {5, 9}, 9, opts, rng);
  source.finalize();
  const QuantizedLayerExport layer = export_layer("fc", source);

  Tensor input = random_tensor({4, 9}, rng, 0.0f, 2.0f);
  const Tensor integer_out = integer_linear_forward(layer, input, 8, 2.0f);
  const Tensor reference_out = reference_linear_forward(layer, input, 8, 2.0f);
  EXPECT_LT(max_abs_diff(integer_out, reference_out),
            1e-4f * std::max(1.0f, max_abs(reference_out)));
}

TEST(Export, IntegerForwardQuantizationErrorShrinksWithActBits) {
  Rng rng(79);
  CsqWeightOptions opts;
  CsqWeightSource source("fc", {6, 12}, 12, opts, rng);
  source.finalize();
  const QuantizedLayerExport layer = export_layer("fc", source);
  Tensor input = random_tensor({8, 12}, rng, 0.0f, 1.0f);

  // Float reference with unquantized activations.
  const Tensor& w = source.weight(false);
  Tensor exact({8, 6});
  for (std::int64_t b = 0; b < 8; ++b) {
    for (std::int64_t o = 0; o < 6; ++o) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < 12; ++i) {
        acc += static_cast<double>(w[o * 12 + i]) * input[b * 12 + i];
      }
      exact[b * 6 + o] = static_cast<float>(acc);
    }
  }
  const float err2 =
      max_abs_diff(integer_linear_forward(layer, input, 2, 1.0f), exact);
  const float err8 =
      max_abs_diff(integer_linear_forward(layer, input, 8, 1.0f), exact);
  EXPECT_LT(err8, err2);
}

}  // namespace
}  // namespace csq
