// Tests for src/tensor: Tensor semantics, elementwise ops, GEMM kernels
// against a naive reference, im2col/col2im adjointness, initializers.
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "test_helpers.h"
#include "util/check.h"

namespace csq {
namespace {

using testing::random_tensor;

TEST(Tensor, ConstructionZeroFills) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FromDataAndAt) {
  Tensor t = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 1}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 1}), 4.0f);
}

TEST(Tensor, FromDataSizeMismatchThrows) {
  EXPECT_THROW(Tensor::from_data({2, 2}, {1.0f}), check_error);
}

TEST(Tensor, AtOutOfRangeThrows) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at({2, 0}), check_error);
  EXPECT_THROW(t.at({0, -1}), check_error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at({2, 1}), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), check_error);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a = Tensor::full({3}, 1.0f);
  Tensor b = a;
  b[0] = 9.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(TensorOps, AddSubMul) {
  Tensor a = Tensor::from_data({3}, {1, 2, 3});
  Tensor b = Tensor::from_data({3}, {4, 5, 6});
  EXPECT_EQ(add(a, b)[1], 7.0f);
  EXPECT_EQ(sub(b, a)[2], 3.0f);
  EXPECT_EQ(mul(a, b)[0], 4.0f);
  EXPECT_THROW(add(a, Tensor({4})), check_error);
}

TEST(TensorOps, Reductions) {
  Tensor a = Tensor::from_data({4}, {-3, 1, 2, 0});
  EXPECT_FLOAT_EQ(sum(a), 0.0f);
  EXPECT_FLOAT_EQ(mean(a), 0.0f);
  EXPECT_FLOAT_EQ(max_abs(a), 3.0f);
  EXPECT_FLOAT_EQ(min_value(a), -3.0f);
  EXPECT_FLOAT_EQ(max_value(a), 2.0f);
  EXPECT_FLOAT_EQ(squared_norm(a), 14.0f);
}

TEST(TensorOps, Argmax) {
  const float values[] = {0.5f, 2.0f, -1.0f, 2.0f};
  EXPECT_EQ(argmax(values, 4), 1);  // first maximum wins
}

TEST(TensorOps, MaxAbsDiff) {
  Tensor a = Tensor::from_data({2}, {1, 5});
  Tensor b = Tensor::from_data({2}, {2, 3});
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 2.0f);
}

// ---------------------------------------------------------------- GEMM --

// Naive triple-loop reference.
void reference_gemm(Trans trans_a, Trans trans_b, std::int64_t m,
                    std::int64_t n, std::int64_t k, float alpha,
                    const float* a, std::int64_t lda, const float* b,
                    std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = trans_a == Trans::no ? a[i * lda + p] : a[p * lda + i];
        const float bv = trans_b == Trans::no ? b[p * ldb + j] : b[j * ldb + p];
        acc += static_cast<double>(av) * bv;
      }
      c[i * ldc + j] = beta * c[i * ldc + j] + alpha * static_cast<float>(acc);
    }
  }
}

struct GemmCase {
  Trans trans_a;
  Trans trans_b;
  std::int64_t m, n, k;
  float alpha, beta;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesNaiveReference) {
  const GemmCase& c = GetParam();
  Rng rng(42);
  const std::int64_t a_rows = c.trans_a == Trans::no ? c.m : c.k;
  const std::int64_t a_cols = c.trans_a == Trans::no ? c.k : c.m;
  const std::int64_t b_rows = c.trans_b == Trans::no ? c.k : c.n;
  const std::int64_t b_cols = c.trans_b == Trans::no ? c.n : c.k;

  Tensor a = random_tensor({a_rows, a_cols}, rng);
  Tensor b = random_tensor({b_rows, b_cols}, rng);
  Tensor out = random_tensor({c.m, c.n}, rng);
  Tensor expected = out;

  gemm(c.trans_a, c.trans_b, c.m, c.n, c.k, c.alpha, a.data(), a_cols,
       b.data(), b_cols, c.beta, out.data(), c.n);
  reference_gemm(c.trans_a, c.trans_b, c.m, c.n, c.k, c.alpha, a.data(),
                 a_cols, b.data(), b_cols, c.beta, expected.data(), c.n);
  EXPECT_LT(max_abs_diff(out, expected), 1e-3f);
}

TEST_P(GemmParamTest, ParallelMatchesSerial) {
  const GemmCase& c = GetParam();
  Rng rng(43);
  const std::int64_t a_rows = c.trans_a == Trans::no ? c.m : c.k;
  const std::int64_t a_cols = c.trans_a == Trans::no ? c.k : c.m;
  const std::int64_t b_rows = c.trans_b == Trans::no ? c.k : c.n;
  const std::int64_t b_cols = c.trans_b == Trans::no ? c.n : c.k;

  Tensor a = random_tensor({a_rows, a_cols}, rng);
  Tensor b = random_tensor({b_rows, b_cols}, rng);
  Tensor serial = random_tensor({c.m, c.n}, rng);
  Tensor parallel = serial;

  gemm(c.trans_a, c.trans_b, c.m, c.n, c.k, c.alpha, a.data(), a_cols,
       b.data(), b_cols, c.beta, serial.data(), c.n);
  gemm_parallel(c.trans_a, c.trans_b, c.m, c.n, c.k, c.alpha, a.data(),
                a_cols, b.data(), b_cols, c.beta, parallel.data(), c.n);
  EXPECT_LT(max_abs_diff(serial, parallel), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParamTest,
    ::testing::Values(
        GemmCase{Trans::no, Trans::no, 3, 4, 5, 1.0f, 0.0f},
        GemmCase{Trans::no, Trans::no, 17, 9, 31, 0.5f, 1.0f},
        GemmCase{Trans::no, Trans::no, 64, 64, 64, 1.0f, 0.0f},
        GemmCase{Trans::no, Trans::yes, 3, 4, 5, 1.0f, 0.0f},
        GemmCase{Trans::no, Trans::yes, 21, 13, 40, -1.0f, 0.5f},
        GemmCase{Trans::no, Trans::yes, 50, 10, 128, 1.0f, 0.0f},
        GemmCase{Trans::yes, Trans::no, 3, 4, 5, 1.0f, 0.0f},
        GemmCase{Trans::yes, Trans::no, 23, 17, 29, 2.0f, 1.0f},
        GemmCase{Trans::yes, Trans::no, 72, 256, 8, 1.0f, 0.0f},
        GemmCase{Trans::no, Trans::no, 1, 1, 1, 1.0f, 0.0f},
        GemmCase{Trans::no, Trans::no, 5, 7, 0, 1.0f, 0.5f}));

// Blocked-kernel parity sweep: every transpose variant against the naive
// reference over odd/prime/tile-straddling extents (1 and 3 exercise the
// zero-padded packing tails, 17 a partial micro-tile, 64 exact MC/tile
// multiples, 129 a blocked edge one past 2*MC), with alpha/beta cycling
// through {0, 1, 0.5}.
TEST(GemmBlockedParity, MatchesNaiveAcrossExtentGrid) {
  const std::int64_t extents[] = {1, 3, 17, 64, 129};
  const float coeffs[] = {0.0f, 1.0f, 0.5f};
  const std::pair<Trans, Trans> variants[] = {
      {Trans::no, Trans::no}, {Trans::no, Trans::yes}, {Trans::yes, Trans::no}};
  Rng rng(1234);
  for (const auto& [trans_a, trans_b] : variants) {
    int combo = 0;
    for (const std::int64_t m : extents) {
      for (const std::int64_t n : extents) {
        for (const std::int64_t k : extents) {
          const float alpha = coeffs[combo % 3];
          const float beta = coeffs[(combo / 3) % 3];
          ++combo;
          const std::int64_t a_rows = trans_a == Trans::no ? m : k;
          const std::int64_t a_cols = trans_a == Trans::no ? k : m;
          const std::int64_t b_rows = trans_b == Trans::no ? k : n;
          const std::int64_t b_cols = trans_b == Trans::no ? n : k;
          Tensor a = random_tensor({a_rows, a_cols}, rng);
          Tensor b = random_tensor({b_rows, b_cols}, rng);
          Tensor out = random_tensor({m, n}, rng);
          Tensor expected = out;
          gemm(trans_a, trans_b, m, n, k, alpha, a.data(), a_cols, b.data(),
               b_cols, beta, out.data(), n);
          reference_gemm(trans_a, trans_b, m, n, k, alpha, a.data(), a_cols,
                         b.data(), b_cols, beta, expected.data(), n);
          ASSERT_LT(max_abs_diff(out, expected), 2e-3f)
              << "ta=" << (trans_a == Trans::yes) << " tb="
              << (trans_b == Trans::yes) << " m=" << m << " n=" << n
              << " k=" << k << " alpha=" << alpha << " beta=" << beta;
        }
      }
    }
  }
}

// Determinism contract (gemm.h): pooled and serial execution must be
// BIT-identical, not merely close — per-element accumulation order is a
// function of the blocking constants only.
TEST(GemmBlockedParity, PooledIsBitIdenticalToSerial) {
  struct Case {
    Trans trans_a, trans_b;
    std::int64_t m, n, k;
    float alpha, beta;
  };
  const Case cases[] = {
      {Trans::no, Trans::no, 256, 256, 256, 1.0f, 0.0f},
      {Trans::no, Trans::no, 129, 200, 300, 0.5f, 1.0f},
      {Trans::no, Trans::yes, 192, 160, 129, 1.0f, 0.5f},
      {Trans::yes, Trans::no, 150, 256, 70, -1.0f, 0.0f},
  };
  Rng rng(77);
  for (const Case& c : cases) {
    const std::int64_t a_rows = c.trans_a == Trans::no ? c.m : c.k;
    const std::int64_t a_cols = c.trans_a == Trans::no ? c.k : c.m;
    const std::int64_t b_rows = c.trans_b == Trans::no ? c.k : c.n;
    const std::int64_t b_cols = c.trans_b == Trans::no ? c.n : c.k;
    Tensor a = random_tensor({a_rows, a_cols}, rng);
    Tensor b = random_tensor({b_rows, b_cols}, rng);
    Tensor serial = random_tensor({c.m, c.n}, rng);
    Tensor pooled = serial;
    gemm(c.trans_a, c.trans_b, c.m, c.n, c.k, c.alpha, a.data(), a_cols,
         b.data(), b_cols, c.beta, serial.data(), c.n);
    gemm_parallel(c.trans_a, c.trans_b, c.m, c.n, c.k, c.alpha, a.data(),
                  a_cols, b.data(), b_cols, c.beta, pooled.data(), c.n);
    for (std::int64_t i = 0; i < serial.numel(); ++i) {
      ASSERT_EQ(serial[i], pooled[i])
          << "bit mismatch at " << i << " (m=" << c.m << " n=" << c.n
          << " k=" << c.k << ")";
    }
  }
}

// A caller-provided GemmScratch must yield the same bits as the internal
// thread-local scratch (the packing layout is scratch-independent).
TEST(GemmBlockedParity, ExternalScratchMatchesThreadLocal) {
  Rng rng(88);
  Tensor a = random_tensor({100, 129}, rng);
  Tensor b = random_tensor({129, 90}, rng);
  Tensor c1({100, 90});
  Tensor c2({100, 90});
  GemmScratch scratch;
  gemm(Trans::no, Trans::no, 100, 90, 129, 1.0f, a.data(), 129, b.data(), 90,
       0.0f, c1.data(), 90);
  gemm(Trans::no, Trans::no, 100, 90, 129, 1.0f, a.data(), 129, b.data(), 90,
       0.0f, c2.data(), 90, &scratch);
  for (std::int64_t i = 0; i < c1.numel(); ++i) ASSERT_EQ(c1[i], c2[i]);
  EXPECT_FALSE(scratch.packed_a.empty());
  EXPECT_FALSE(scratch.packed_b.empty());
}

TEST(Gemm, BetaZeroIgnoresGarbageInC) {
  Tensor a = Tensor::full({2, 2}, 1.0f);
  Tensor b = Tensor::full({2, 2}, 1.0f);
  Tensor c = Tensor::from_data({2, 2}, {NAN, NAN, NAN, NAN});
  gemm(Trans::no, Trans::no, 2, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 0.0f,
       c.data(), 2);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c[i], 2.0f);
}

// -------------------------------------------------------------- im2col --

// Direct convolution reference for one image.
void reference_conv(const ConvGeometry& g, const float* image,
                    const float* weights, std::int64_t out_c, float* out) {
  const std::int64_t out_h = g.out_h(), out_w = g.out_w();
  for (std::int64_t oc = 0; oc < out_c; ++oc) {
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        double acc = 0.0;
        for (std::int64_t c = 0; c < g.channels; ++c) {
          for (std::int64_t ki = 0; ki < g.kernel_h; ++ki) {
            for (std::int64_t kj = 0; kj < g.kernel_w; ++kj) {
              const std::int64_t iy = oy * g.stride - g.pad + ki;
              const std::int64_t ix = ox * g.stride - g.pad + kj;
              if (iy < 0 || iy >= g.height || ix < 0 || ix >= g.width) continue;
              const float w =
                  weights[((oc * g.channels + c) * g.kernel_h + ki) *
                              g.kernel_w + kj];
              acc += static_cast<double>(w) *
                     image[(c * g.height + iy) * g.width + ix];
            }
          }
        }
        out[(oc * out_h + oy) * out_w + ox] = static_cast<float>(acc);
      }
    }
  }
}

struct ConvCase {
  std::int64_t channels, height, width, kernel, stride, pad;
};

class Im2ColParamTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Im2ColParamTest, GemmOnColumnsEqualsDirectConvolution) {
  const ConvCase& p = GetParam();
  ConvGeometry g;
  g.channels = p.channels;
  g.height = p.height;
  g.width = p.width;
  g.kernel_h = g.kernel_w = p.kernel;
  g.stride = p.stride;
  g.pad = p.pad;
  g.validate();

  Rng rng(9);
  const std::int64_t out_c = 3;
  Tensor image = random_tensor({g.channels, g.height, g.width}, rng);
  Tensor weights =
      random_tensor({out_c, g.channels, g.kernel_h, g.kernel_w}, rng);

  Tensor col({g.col_rows(), g.col_cols()});
  im2col(g, image.data(), col.data());
  Tensor via_gemm({out_c, g.out_h(), g.out_w()});
  gemm(Trans::no, Trans::no, out_c, g.col_cols(), g.col_rows(), 1.0f,
       weights.data(), g.col_rows(), col.data(), g.col_cols(), 0.0f,
       via_gemm.data(), g.col_cols());

  Tensor direct({out_c, g.out_h(), g.out_w()});
  reference_conv(g, image.data(), weights.data(), out_c, direct.data());
  EXPECT_LT(max_abs_diff(via_gemm, direct), 1e-4f);
}

TEST_P(Im2ColParamTest, Col2ImIsAdjointOfIm2Col) {
  // Adjoint identity: <im2col(x), y> == <x, col2im(y)> for all x, y.
  const ConvCase& p = GetParam();
  ConvGeometry g;
  g.channels = p.channels;
  g.height = p.height;
  g.width = p.width;
  g.kernel_h = g.kernel_w = p.kernel;
  g.stride = p.stride;
  g.pad = p.pad;

  Rng rng(10);
  Tensor x = random_tensor({g.channels, g.height, g.width}, rng);
  Tensor y = random_tensor({g.col_rows(), g.col_cols()}, rng);

  Tensor col({g.col_rows(), g.col_cols()});
  im2col(g, x.data(), col.data());
  Tensor back({g.channels, g.height, g.width});
  col2im(g, y.data(), back.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < col.numel(); ++i) {
    lhs += static_cast<double>(col[i]) * y[i];
  }
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * back[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::fabs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColParamTest,
    ::testing::Values(ConvCase{1, 5, 5, 3, 1, 1}, ConvCase{3, 8, 8, 3, 1, 1},
                      ConvCase{2, 7, 9, 3, 2, 1}, ConvCase{4, 6, 6, 1, 1, 0},
                      ConvCase{2, 8, 8, 1, 2, 0}, ConvCase{3, 5, 5, 5, 1, 2},
                      ConvCase{1, 4, 4, 2, 2, 0}));

TEST(ConvGeometry, RejectsBadConfigs) {
  ConvGeometry g;
  g.channels = 1;
  g.height = 4;
  g.width = 4;
  g.kernel_h = g.kernel_w = 5;
  g.stride = 1;
  g.pad = 0;
  EXPECT_THROW(g.validate(), check_error);
  g.pad = 2;
  EXPECT_NO_THROW(g.validate());
  g.stride = 0;
  EXPECT_THROW(g.validate(), check_error);
}

// ---------------------------------------------------------------- init --

TEST(Init, HeNormalStatistics) {
  Rng rng(21);
  Tensor w({64, 64});
  fill_he_normal(w, 64, rng);
  const double target_std = std::sqrt(2.0 / 64.0);
  double sum = 0.0, sum_sq = 0.0;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    sum += w[i];
    sum_sq += static_cast<double>(w[i]) * w[i];
  }
  const double mean_v = sum / w.numel();
  const double std_v = std::sqrt(sum_sq / w.numel() - mean_v * mean_v);
  EXPECT_NEAR(mean_v, 0.0, 0.02);
  EXPECT_NEAR(std_v, target_std, 0.02);
}

TEST(Init, XavierUniformWithinLimit) {
  Rng rng(22);
  Tensor w({32, 32});
  fill_xavier_uniform(w, 32, 32, rng);
  const float limit = std::sqrt(6.0f / 64.0f);
  EXPECT_LE(max_abs(w), limit);
  EXPECT_GT(max_abs(w), 0.8f * limit);  // actually uses the range
}

}  // namespace
}  // namespace csq
