// Integration tests for the CSQ training pipeline (Algorithm 1): budget
// convergence, trajectory recording, finalization exactness, finetune phase.
// Kept small (tiny model, tiny data) so the suite stays fast.
#include <gtest/gtest.h>

#include "core/csq_trainer.h"
#include "core/export.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "opt/trainer.h"
#include "util/check.h"

namespace csq {
namespace {

SyntheticConfig tiny_data_config() {
  SyntheticConfig config;
  config.num_classes = 4;
  config.train_samples = 96;
  config.test_samples = 48;
  config.height = 8;
  config.width = 8;
  config.noise_stddev = 0.3f;
  config.seed = 12;
  return config;
}

struct TrainedCsq {
  Model model;
  std::vector<CsqWeightSource*> sources;
  CsqTrainResult result;
};

TrainedCsq run_tiny_csq(double target_bits, double lambda, int epochs,
                        int finetune_epochs = 0) {
  const SyntheticDataset data = make_synthetic(tiny_data_config());
  TrainedCsq out;
  Rng rng(13);
  ModelConfig model_config;
  model_config.num_classes = 4;
  model_config.base_width = 4;
  out.model = make_resnet20(model_config, csq_weight_factory(&out.sources),
                            nullptr, rng);
  CsqTrainConfig config;
  config.train.epochs = epochs;
  config.train.batch_size = 32;
  config.train.learning_rate = 0.05f;
  config.lambda = lambda;
  config.target_bits = target_bits;
  config.finetune_epochs = finetune_epochs;
  out.result = train_csq(out.model, out.sources, data.train, data.test,
                         config);
  return out;
}

TEST(CsqTrainer, ReachesNeighborhoodOfTargetPrecision) {
  const TrainedCsq trained = run_tiny_csq(/*target=*/3.0, /*lambda=*/0.05,
                                          /*epochs=*/10);
  EXPECT_NEAR(trained.result.average_bits, 3.0, 1.0);
  EXPECT_LT(trained.result.average_bits, 8.0);  // pruning happened
  EXPECT_DOUBLE_EQ(trained.result.compression,
                   32.0 / trained.result.average_bits);
}

TEST(CsqTrainer, TinyLambdaFailsToReachBudget) {
  // The paper's Figure 2 property: lambda <= 1e-6 cannot control precision.
  const TrainedCsq trained = run_tiny_csq(/*target=*/3.0, /*lambda=*/1e-6,
                                          /*epochs=*/8);
  EXPECT_GT(trained.result.average_bits, 5.0);
}

TEST(CsqTrainer, TrajectoryRecordedPerEpochAndDecreasing) {
  const TrainedCsq trained = run_tiny_csq(3.0, 0.05, 10);
  ASSERT_EQ(trained.result.precision_trajectory.size(), 10u);
  EXPECT_GE(trained.result.precision_trajectory.front(),
            trained.result.precision_trajectory.back());
  EXPECT_LE(trained.result.precision_trajectory.front(), 8.0);
}

TEST(CsqTrainer, FinalizedModelUsesExactGridWeights) {
  TrainedCsq trained = run_tiny_csq(4.0, 0.05, 8);
  for (CsqWeightSource* source : trained.sources) {
    EXPECT_EQ(source->mode(), CsqMode::finalized);
    EXPECT_EQ(export_roundtrip_error(*source), 0.0f);
  }
}

TEST(CsqTrainer, SoftAndFinalizedAccuracyAgreeAfterAnnealing) {
  // At beta_max the gates are near-binary: snapping them must not change
  // the model much (the paper's "exact quantized model, no rounding").
  const TrainedCsq trained = run_tiny_csq(4.0, 0.05, 12);
  EXPECT_NEAR(trained.result.test_accuracy, trained.result.soft_test_accuracy,
              15.0f);
}

TEST(CsqTrainer, LayerBitsCoverEveryQuantLayer) {
  const TrainedCsq trained = run_tiny_csq(3.0, 0.05, 6);
  EXPECT_EQ(trained.result.layer_bits.size(),
            trained.model.quant_layers().size());
  for (const LayerPrecision& layer : trained.result.layer_bits) {
    EXPECT_GE(layer.bits, 0);
    EXPECT_LE(layer.bits, 8);
    EXPECT_GT(layer.weight_count, 0);
  }
  EXPECT_EQ(trained.result.layer_bits.front().name, "conv1");
  EXPECT_EQ(trained.result.layer_bits.back().name, "fc");
}

TEST(CsqTrainer, FinetunePhaseRunsAndKeepsScheme) {
  const TrainedCsq trained = run_tiny_csq(3.0, 0.02, 8, /*finetune=*/4);
  // Finetune ran: its fit result is populated.
  EXPECT_GT(trained.result.finetune_phase.test_accuracy, 0.0f);
  // The scheme frozen at the end of the joint phase is preserved through
  // finetune and finalization: the last joint-epoch precision (recorded
  // with the same I(m_B >= 0) rule) must equal the final precision exactly.
  ASSERT_FALSE(trained.result.precision_trajectory.empty());
  EXPECT_DOUBLE_EQ(trained.result.average_bits,
                   trained.result.precision_trajectory.back());
}

TEST(CsqTrainer, AccuracyIsReasonableOnEasyData) {
  // Tiny data means few optimizer steps per epoch; the bit-level model
  // needs ~60 steps before the soft representation organizes (the dense
  // baseline learns faster — that gap is the cost CSQ pays for bit-level
  // freedom, also visible in the paper's long training schedules).
  const TrainedCsq trained = run_tiny_csq(5.0, 0.02, 20);
  EXPECT_GT(trained.result.test_accuracy, 50.0f);  // 4 classes, easy noise
}

TEST(CsqTrainer, RequiresAtLeastOneSource) {
  const SyntheticDataset data = make_synthetic(tiny_data_config());
  Rng rng(14);
  ModelConfig model_config;
  model_config.num_classes = 4;
  model_config.base_width = 4;
  Model dense = make_resnet20(model_config, dense_weight_factory(), nullptr,
                              rng);
  CsqTrainConfig config;
  EXPECT_THROW(train_csq(dense, {}, data.train, data.test, config),
               check_error);
}

}  // namespace
}  // namespace csq
