// Failure-semantics tests (`ctest -L robustness`, also swept by the
// sanitize/tsan presets):
//
//  * Failpoint.*         — the deterministic fault-injection framework
//    itself: trigger policies, counters, re-arm/disarm, the stream variant;
//  * ArtifactRobustness.* — crash-safe graph artifacts: atomic temp+rename
//    save (an injected mid-write failure leaves the previous artifact
//    intact and no temp litter), the v4 CRC-32 trailer rejecting bit
//    flips and truncation, the artifact.read failpoint;
//  * CorruptionFuzz.*    — the committed golden_v3.csqm fixture truncated
//    at every byte boundary and bit-flipped across the file: every outcome
//    is a clean check_error (or a successful load for pre-CRC flips),
//    never a crash — run this suite under the sanitize preset for the
//    memory-safety half of the claim;
//  * ServeRobustness.*   — the serving failure paths: replica quarantine +
//    backoff restore with bit-identical recovery, shard failure only when
//    every replica is dead, load shedding, request deadlines, stale
//    handles, warmup failures, deadline-bounded drain, and a thread-pool
//    submission fault on pooled replicas.
#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/csq_weight.h"
#include "core/model_io.h"
#include "nn/models.h"
#include "nn/weight_source.h"
#include "runtime/compiled_graph.h"
#include "runtime/graph_artifact.h"
#include "serve/batching_server.h"
#include "test_helpers.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace csq {
namespace {

using testing::random_tensor;

constexpr std::int64_t kSide = 12;
constexpr std::int64_t kChannels = 3;

std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "csq_robust_" + tag + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".csqm";
}

std::string golden_v3_path() {
  return std::string(CSQ_TEST_DATA_DIR) + "/golden_v3.csqm";
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream sink;
  sink << in.rdbuf();
  return sink.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// A small finalized 3-bit CSQ ResNet-20, lowered and calibrated (same
// substrate as serve_test.cpp).
runtime::CompiledGraph make_calibrated_graph() {
  Rng rng(8001);
  std::vector<CsqWeightSource*> registry;
  ModelConfig model_config;
  model_config.base_width = 4;
  CsqWeightOptions weight_options;
  weight_options.fixed_precision = 3;
  Model model = make_resnet20(
      model_config, csq_weight_factory(&registry, weight_options), nullptr,
      rng);
  for (CsqWeightSource* source : registry) source->finalize();

  runtime::LowerOptions options;
  options.in_channels = kChannels;
  options.in_height = kSide;
  options.in_width = kSide;
  runtime::CompiledGraph graph = runtime::lower(model, options);
  Rng calib_rng(8002);
  Tensor calib = random_tensor({8, kChannels, kSide, kSide}, calib_rng);
  graph.calibrate(calib);
  return graph;
}

#if CSQ_FAILPOINTS_ENABLED

// ----------------------------------------------------- failpoint framework --

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::disarm_all(); }

  // One evaluation of a test-local site; returns whether it fired.
  static bool evaluate(const char* point) {
    try {
      CSQ_FAILPOINT(point);
    } catch (const fail::injected_fault& fault) {
      EXPECT_EQ(fault.point(), point);
      return true;
    }
    return false;
  }
};

TEST_F(FailpointTest, UnarmedSitesNeverFireAndCountNothing) {
  EXPECT_FALSE(evaluate("test.unarmed"));
  EXPECT_EQ(fail::evaluations("test.unarmed"), 0u);
  EXPECT_EQ(fail::triggers("test.unarmed"), 0u);
}

TEST_F(FailpointTest, OncePolicyFiresExactlyOnce) {
  fail::arm("test.once", fail::Policy::kOnce);
  EXPECT_TRUE(evaluate("test.once"));
  EXPECT_FALSE(evaluate("test.once"));
  EXPECT_FALSE(evaluate("test.once"));
  EXPECT_EQ(fail::evaluations("test.once"), 3u);
  EXPECT_EQ(fail::triggers("test.once"), 1u);
}

TEST_F(FailpointTest, EveryNPolicyFiresOnMultiples) {
  fail::arm("test.every", fail::Policy::kEveryN, 3);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(evaluate("test.every"));
  const std::vector<bool> expected = {false, false, true, false, false,
                                      true, false, false, true};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(fail::triggers("test.every"), 3u);
}

TEST_F(FailpointTest, AfterNPolicyFiresPastTheThreshold) {
  fail::arm("test.after", fail::Policy::kAfterN, 2);
  EXPECT_FALSE(evaluate("test.after"));
  EXPECT_FALSE(evaluate("test.after"));
  EXPECT_TRUE(evaluate("test.after"));
  EXPECT_TRUE(evaluate("test.after"));
  EXPECT_EQ(fail::triggers("test.after"), 2u);
}

TEST_F(FailpointTest, RearmResetsCountersAndDisarmSilences) {
  fail::arm("test.rearm", fail::Policy::kOnce);
  EXPECT_TRUE(evaluate("test.rearm"));
  // Re-arming replaces the state: the kOnce budget is fresh.
  fail::arm("test.rearm", fail::Policy::kOnce);
  EXPECT_EQ(fail::evaluations("test.rearm"), 0u);
  EXPECT_TRUE(evaluate("test.rearm"));
  fail::disarm("test.rearm");
  EXPECT_FALSE(evaluate("test.rearm"));
  EXPECT_EQ(fail::evaluations("test.rearm"), 0u);  // unarmed again
}

TEST_F(FailpointTest, StreamVariantPoisonsTheStreamInsteadOfThrowing) {
  std::ostringstream out;
  CSQ_FAILPOINT_STREAM("test.stream", out);
  EXPECT_TRUE(out.good());  // unarmed: untouched
  fail::arm("test.stream", fail::Policy::kOnce);
  CSQ_FAILPOINT_STREAM("test.stream", out);
  EXPECT_TRUE(out.fail());  // armed: the disk-full observable
}

#endif  // CSQ_FAILPOINTS_ENABLED

// ------------------------------------------------------ crash-safe artifacts

class ArtifactRobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override {
#if CSQ_FAILPOINTS_ENABLED
    fail::disarm_all();
#endif
  }
};

#if CSQ_FAILPOINTS_ENABLED

TEST_F(ArtifactRobustnessTest, FailedSaveLeavesPreviousArtifactIntact) {
  // A mid-write failure (injected failbit: disk full) must leave the
  // previously saved artifact byte-identical and no temp litter behind —
  // the whole point of the temp-file + atomic-rename protocol.
  char dir_template[512];
  const std::string tmpl = ::testing::TempDir() + "csq_atomic_XXXXXX";
  ASSERT_LT(tmpl.size(), sizeof(dir_template));
  std::memcpy(dir_template, tmpl.c_str(), tmpl.size() + 1);
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir(dir_template);
  const std::string path = dir + "/model.csqm";

  runtime::CompiledGraph graph = make_calibrated_graph();
  ASSERT_TRUE(runtime::save_graph(path, graph));
  const std::string before = read_bytes(path);

  fail::arm("artifact.write", fail::Policy::kOnce);
  EXPECT_FALSE(runtime::save_graph(path, graph));
  EXPECT_EQ(read_bytes(path), before) << "destination was touched";

  // The directory holds exactly the artifact: the failed temp was removed.
  std::vector<std::string> entries;
  DIR* handle = ::opendir(dir.c_str());
  ASSERT_NE(handle, nullptr);
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") entries.push_back(name);
  }
  ::closedir(handle);
  EXPECT_EQ(entries, std::vector<std::string>{"model.csqm"});

  // And the surviving artifact still loads and serves.
  runtime::CompiledGraph loaded = runtime::load_graph(path, /*pooled=*/false);
  EXPECT_EQ(loaded.io_shape().out_features, 10);

  std::remove(path.c_str());
  ::rmdir(dir.c_str());
}

TEST_F(ArtifactRobustnessTest, ReadFailpointSurfacesAsInjectedFault) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  const std::string path = temp_path("read_fault");
  ASSERT_TRUE(runtime::save_graph(path, graph));
  fail::arm("artifact.read", fail::Policy::kOnce);
  EXPECT_THROW(runtime::load_graph(path), fail::injected_fault);
  // Self-disarmed after the single trigger: the retry succeeds.
  runtime::CompiledGraph loaded = runtime::load_graph(path, /*pooled=*/false);
  EXPECT_EQ(loaded.io_shape().out_features, 10);
  std::remove(path.c_str());
}

TEST_F(ArtifactRobustnessTest, FsyncFailureLeavesPreviousArtifactIntact) {
  // The durability fsync of the TEMP file fails (pre-rename window): the
  // destination must be untouched and the failed temp removed — same
  // contract as a mid-write failure, one step later in the protocol.
  char dir_template[512];
  const std::string tmpl = ::testing::TempDir() + "csq_fsync_XXXXXX";
  ASSERT_LT(tmpl.size(), sizeof(dir_template));
  std::memcpy(dir_template, tmpl.c_str(), tmpl.size() + 1);
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir(dir_template);
  const std::string path = dir + "/model.csqm";

  runtime::CompiledGraph graph = make_calibrated_graph();
  ASSERT_TRUE(runtime::save_graph(path, graph));
  const std::string before = read_bytes(path);

  fail::arm("artifact.fsync", fail::Policy::kOnce);
  EXPECT_FALSE(runtime::save_graph(path, graph));
  EXPECT_EQ(read_bytes(path), before) << "destination was touched";

  std::vector<std::string> entries;
  DIR* handle = ::opendir(dir.c_str());
  ASSERT_NE(handle, nullptr);
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") entries.push_back(name);
  }
  ::closedir(handle);
  EXPECT_EQ(entries, std::vector<std::string>{"model.csqm"});

  runtime::CompiledGraph loaded = runtime::load_graph(path, /*pooled=*/false);
  EXPECT_EQ(loaded.io_shape().out_features, 10);
  std::remove(path.c_str());
  ::rmdir(dir.c_str());
}

TEST_F(ArtifactRobustnessTest, DirsyncFailureIsPostRenameAndNonDestructive) {
  // The parent-directory fsync fails AFTER the atomic rename (post-rename
  // window): save_graph must report failure — the caller cannot count on
  // the rename surviving a crash — but the renamed file IS the complete
  // new artifact, so a reader that finds it must be able to trust it.
  runtime::CompiledGraph graph = make_calibrated_graph();
  const std::string path = temp_path("dirsync_fault");
  fail::arm("artifact.dirsync", fail::Policy::kOnce);
  EXPECT_FALSE(runtime::save_graph(path, graph));

  runtime::CompiledGraph loaded = runtime::load_graph(path, /*pooled=*/false);
  EXPECT_EQ(loaded.io_shape().out_features, 10);
  // The mmap loader trusts it too (CRC over the full mapping).
  runtime::CompiledGraph mapped =
      runtime::load_graph_mmap(path, /*pooled=*/false);
  EXPECT_EQ(mapped.io_shape().out_features, 10);
  std::remove(path.c_str());
}

TEST_F(ArtifactRobustnessTest, MmapFailpointSurfacesAsInjectedFault) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  const std::string path = temp_path("mmap_fault");
  ASSERT_TRUE(runtime::save_graph(path, graph));
  fail::arm("artifact.mmap", fail::Policy::kOnce);
  EXPECT_THROW(runtime::load_graph_mmap(path), fail::injected_fault);
  // Self-disarmed: the retry maps and serves.
  runtime::CompiledGraph loaded =
      runtime::load_graph_mmap(path, /*pooled=*/false);
  EXPECT_EQ(loaded.io_shape().out_features, 10);
  std::remove(path.c_str());
}

#endif  // CSQ_FAILPOINTS_ENABLED

TEST_F(ArtifactRobustnessTest, SaveToUnopenablePathReturnsFalse) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  EXPECT_FALSE(runtime::save_graph(
      "/nonexistent_csq_dir/deeper/model.csqm", graph));
}

TEST_F(ArtifactRobustnessTest, CrcTrailerRejectsEverySampledBitFlip) {
  // The v4 graph section ends in a CRC-32 over every preceding byte: ANY
  // single-bit flip anywhere in the artifact (payload or trailer) must be
  // rejected before a single parsed field is trusted.
  runtime::CompiledGraph graph = make_calibrated_graph();
  const std::string path = temp_path("crc_flip");
  ASSERT_TRUE(runtime::save_graph(path, graph));
  std::string bytes = read_bytes(path);
  ASSERT_GT(bytes.size(), 8u);

  const std::string flipped_path = temp_path("crc_flip_mut");
  const std::size_t total_bits = bytes.size() * 8;
  // ~256 deterministic positions spread over the file, plus both ends
  // (header magic and the trailer itself).
  const std::size_t stride = std::max<std::size_t>(1, total_bits / 256);
  std::size_t rejected = 0;
  for (std::size_t bit = 0; bit < total_bits; bit += stride) {
    std::string mutant = bytes;
    mutant[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(mutant[bit / 8]) ^ (1u << (bit % 8)));
    write_bytes(flipped_path, mutant);
    EXPECT_THROW(runtime::load_graph(flipped_path), check_error)
        << "bit " << bit << " flipped without detection";
    ++rejected;
  }
  EXPECT_GE(rejected, 200u);
  std::remove(path.c_str());
  std::remove(flipped_path.c_str());
}

TEST_F(ArtifactRobustnessTest, TruncatedV4ArtifactIsRejected) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  const std::string path = temp_path("v4_trunc");
  ASSERT_TRUE(runtime::save_graph(path, graph));
  const std::string bytes = read_bytes(path);
  const std::string mutant_path = temp_path("v4_trunc_mut");
  // A torn tail — including a clean cut right through the CRC trailer —
  // must never load.
  for (const std::size_t cut :
       {bytes.size() - 1, bytes.size() - 2, bytes.size() - 4,
        bytes.size() - 5, bytes.size() / 2, std::size_t{16}, std::size_t{0}}) {
    write_bytes(mutant_path, bytes.substr(0, cut));
    EXPECT_THROW(runtime::load_graph(mutant_path), check_error)
        << "cut at " << cut;
  }
  std::remove(path.c_str());
  std::remove(mutant_path.c_str());
}

// ------------------------------------------------------- corruption fuzzing

TEST(CorruptionFuzz, GoldenV3EveryTruncationFailsCleanly) {
  // The committed 1137-byte pre-CRC fixture, truncated at EVERY byte
  // boundary (so every section boundary is covered): each prefix must be
  // rejected with a clean check_error — no crash, no hang, no garbage
  // graph. Run under the sanitize preset this doubles as the memory-safety
  // sweep of the legacy parse path.
  const std::string bytes = read_bytes(golden_v3_path());
  ASSERT_EQ(bytes.size(), 1137u);
  const std::string path = temp_path("golden_trunc");
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    write_bytes(path, bytes.substr(0, cut));
    EXPECT_THROW(runtime::load_graph(path), check_error) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(CorruptionFuzz, GoldenV3BitFlipsNeverCrash) {
  // Pre-CRC artifacts carry no integrity trailer, so a flipped bit may
  // legitimately parse (e.g. inside a weight code or a scale). The
  // guarantee under test is weaker but vital: EVERY outcome is either a
  // successful load or a clean check_error — never a crash or an
  // out-of-bounds parse (the sanitize preset enforces the latter).
  const std::string bytes = read_bytes(golden_v3_path());
  ASSERT_EQ(bytes.size(), 1137u);
  const std::string path = temp_path("golden_flip");
  const std::size_t total_bits = bytes.size() * 8;
  std::size_t loaded = 0;
  std::size_t rejected = 0;
  for (std::size_t bit = 0; bit < total_bits; bit += 7) {
    std::string mutant = bytes;
    mutant[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(mutant[bit / 8]) ^ (1u << (bit % 8)));
    write_bytes(path, mutant);
    try {
      runtime::CompiledGraph graph =
          runtime::load_graph(path, /*pooled=*/false);
      ++loaded;
    } catch (const check_error&) {
      ++rejected;
    }
  }
  // Both outcomes must actually occur: flips in magic/counts reject, flips
  // deep inside code payloads survive the (CRC-less) legacy parse.
  EXPECT_GT(loaded, 0u);
  EXPECT_GT(rejected, 0u);
  std::remove(path.c_str());
}

TEST(CorruptionFuzz, GoldenV3StillLoadsAndServes) {
  // The un-mutated fixture keeps loading after the v4/CRC format change:
  // backward compatibility is part of the corruption-handling contract.
  runtime::CompiledGraph graph =
      runtime::load_graph(golden_v3_path(), /*pooled=*/false);
  EXPECT_EQ(graph.io_shape().out_features, 3);
  Tensor probe = Tensor::zeros({1, 3, 8, 8});
  EXPECT_EQ(graph.forward(probe).numel(), 3);
}

TEST(CorruptionFuzz, MmapLoaderRejectsEverySampledBitFlip) {
  // Unlike the copy loader on pre-CRC files, load_graph_mmap verifies the
  // CRC over the WHOLE mapping before trusting a single page, so EVERY
  // bit flip — header, weight section, or the trailer itself — must be
  // rejected with a clean check_error.
  runtime::CompiledGraph graph = make_calibrated_graph();
  const std::string path = temp_path("mmap_flip");
  ASSERT_TRUE(runtime::save_graph(path, graph));
  const std::string bytes = read_bytes(path);
  const std::string mutant_path = temp_path("mmap_flip_mut");
  const std::size_t total_bits = bytes.size() * 8;
  const std::size_t stride = std::max<std::size_t>(1, total_bits / 256);
  for (std::size_t bit = 0; bit < total_bits; bit += stride) {
    std::string mutant = bytes;
    mutant[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(mutant[bit / 8]) ^ (1u << (bit % 8)));
    write_bytes(mutant_path, mutant);
    EXPECT_THROW(runtime::load_graph_mmap(mutant_path), check_error)
        << "bit " << bit;
  }
  std::remove(path.c_str());
  std::remove(mutant_path.c_str());
}

TEST(CorruptionFuzz, MmapLoaderRejectsEverySampledTruncation) {
  // Truncation removes or splits the CRC trailer; every sampled prefix of
  // a v5 artifact must fail cleanly before any parsing (run under the
  // sanitize preset, this is the memory-safety sweep of the mapped path).
  runtime::CompiledGraph graph = make_calibrated_graph();
  const std::string path = temp_path("mmap_trunc");
  ASSERT_TRUE(runtime::save_graph(path, graph));
  const std::string bytes = read_bytes(path);
  const std::string cut_path = temp_path("mmap_trunc_cut");
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 512);
  for (std::size_t cut = 0; cut < bytes.size(); cut += stride) {
    write_bytes(cut_path, bytes.substr(0, cut));
    EXPECT_THROW(runtime::load_graph_mmap(cut_path), check_error)
        << "cut at " << cut;
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

// A small dense model for checkpoint-container fuzzing (mirrors
// model_io_test.cpp's fixture).
Model checkpoint_model(std::uint64_t seed) {
  Rng rng(seed);
  ModelConfig config;
  config.num_classes = 4;
  config.base_width = 4;
  return make_resnet_cifar(8, config, dense_weight_factory(), nullptr, rng);
}

TEST(CorruptionFuzz, CheckpointV2EverySampledTruncationFailsCleanly) {
  // The CSQC v2 arena checkpoint, truncated across the metadata table and
  // the flat f32 blob: every prefix must be rejected with a clean
  // check_error and must leave the destination model untouched enough to
  // keep loading further mutants (no partial-write crashes).
  Model model = checkpoint_model(61);
  const std::string path = temp_path("ckpt_trunc");
  ASSERT_TRUE(save_checkpoint(path, model));
  const std::string bytes = read_bytes(path);
  ASSERT_GT(bytes.size(), 64u);
  Model victim = checkpoint_model(62);
  const std::string cut_path = temp_path("ckpt_trunc_cut");
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 512);
  for (std::size_t cut = 0; cut < bytes.size(); cut += stride) {
    write_bytes(cut_path, bytes.substr(0, cut));
    EXPECT_THROW(load_checkpoint(cut_path, victim), check_error)
        << "cut at " << cut;
  }
  // The intact file still loads after the whole gauntlet.
  load_checkpoint(path, victim);
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST(CorruptionFuzz, CheckpointV2BitFlipsNeverCrash) {
  // CSQC carries no integrity trailer, so a flip deep inside the f32 blob
  // may legitimately load (as different weights). The guarantee is the
  // weaker memory-safety one: every sampled flip either loads or throws a
  // clean check_error — never a crash or out-of-bounds parse.
  Model model = checkpoint_model(63);
  const std::string path = temp_path("ckpt_flip");
  ASSERT_TRUE(save_checkpoint(path, model));
  const std::string bytes = read_bytes(path);
  Model victim = checkpoint_model(64);
  const std::string mutant_path = temp_path("ckpt_flip_mut");
  const std::size_t total_bits = bytes.size() * 8;
  const std::size_t stride = std::max<std::size_t>(1, total_bits / 256);
  std::size_t loaded = 0;
  std::size_t rejected = 0;
  for (std::size_t bit = 0; bit < total_bits; bit += stride) {
    std::string mutant = bytes;
    mutant[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(mutant[bit / 8]) ^ (1u << (bit % 8)));
    write_bytes(mutant_path, mutant);
    try {
      load_checkpoint(mutant_path, victim);
      ++loaded;
    } catch (const check_error&) {
      ++rejected;
    }
  }
  // Both outcomes occur: header/metadata flips reject, blob flips load.
  EXPECT_GT(loaded, 0u);
  EXPECT_GT(rejected, 0u);
  std::remove(path.c_str());
  std::remove(mutant_path.c_str());
}

#if CSQ_FAILPOINTS_ENABLED

// ------------------------------------------------------- serving robustness

class ServeRobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::disarm_all(); }

  // Polls a shard-stats predicate for up to ~10 s — far beyond any healthy
  // restore, but roomy enough that a fully loaded CI box (parallel ctest
  // plus a concurrent build) cannot starve a rebuild+warmup past it.
  template <typename Predicate>
  static bool poll(Predicate&& predicate) {
    for (int i = 0; i < 2000; ++i) {
      if (predicate()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return predicate();
  }
};

TEST_F(ServeRobustnessTest, QuarantinedReplicaRecoversWhileSiblingsServe) {
  // One replica's forward throws once: its batch is requeued for the
  // sibling (no request lost, results still bit-identical), the failed
  // replica is rebuilt from the shard's shared program, and the shard ends
  // the test at full strength.
  runtime::CompiledGraph graph = make_calibrated_graph();
  const auto shape = graph.io_shape();
  const std::int64_t sample_numel = kChannels * kSide * kSide;
  Rng rng(8100);
  Tensor samples = random_tensor({8, kChannels, kSide, kSide}, rng);
  std::vector<Tensor> expected;
  for (int s = 0; s < 8; ++s) {
    Tensor one({1, kChannels, kSide, kSide});
    std::memcpy(one.data(), samples.data() + s * sample_numel,
                static_cast<std::size_t>(sample_numel) * sizeof(float));
    expected.push_back(graph.forward(one));
  }

  serve::ServerOptions options;
  options.max_batch = 4;
  options.max_latency_us = 200;
  options.restore_backoff_us = 200;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(runtime::replicate(graph));
  replicas.push_back(runtime::replicate(graph));
  server.add_model("m", std::move(replicas));

  fail::arm("serve.replica_forward", fail::Policy::kOnce);
  server.start();

  const serve::ModelHandle handle = server.handle("m");
  constexpr int kProducers = 4;
  constexpr int kIterations = 25;
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<float> logits(
          static_cast<std::size_t>(shape.out_features));
      for (int i = 0; i < kIterations; ++i) {
        const int s = (p * 31 + i * 7) % 8;
        const serve::ServeStatus status = server.try_infer(
            handle, samples.data() + s * sample_numel, logits.data());
        if (status != serve::ServeStatus::kOk) {
          ++failures;
          continue;
        }
        if (std::memcmp(logits.data(),
                        expected[static_cast<std::size_t>(s)].data(),
                        logits.size() * sizeof(float)) != 0) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  EXPECT_EQ(failures.load(), 0u) << "requests failed during quarantine";
  EXPECT_EQ(mismatches.load(), 0u) << "served bits diverged";
  EXPECT_EQ(fail::triggers("serve.replica_forward"), 1u)
      << "the fault never fired: the test exercised nothing";

  // The backoff restore completes shortly after the quarantine.
  EXPECT_TRUE(poll([&] { return server.stats("m").restores >= 1; }));
  const auto stats = server.stats("m");
  EXPECT_GE(stats.quarantines, 1u);
  EXPECT_GE(stats.restores, 1u);
  EXPECT_EQ(stats.replicas_quarantined, 0);
  EXPECT_EQ(stats.replicas_dead, 0);
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kProducers * kIterations));
  server.stop();
}

TEST_F(ServeRobustnessTest, ShardFailsOnlyWhenEveryReplicaIsDead) {
  // Single replica, forward fails once, and every rebuild attempt fails
  // too: the replica exhausts its restore budget, the shard dies, and the
  // blocked producer gets kShardFailed instead of hanging.
  runtime::CompiledGraph graph = make_calibrated_graph();
  const auto shape = graph.io_shape();

  serve::ServerOptions options;
  options.max_batch = 2;
  options.max_latency_us = 100;
  options.restore_backoff_us = 100;
  options.restore_max_attempts = 2;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));

  fail::arm("serve.replica_forward", fail::Policy::kOnce);
  fail::arm("serve.restore", fail::Policy::kEveryN, 1);
  server.start();

  std::vector<float> sample(
      static_cast<std::size_t>(kChannels * kSide * kSide), 0.25f);
  std::vector<float> logits(static_cast<std::size_t>(shape.out_features));
  const serve::ModelHandle handle = server.handle("m");
  EXPECT_EQ(server.try_infer(handle, sample.data(), logits.data()),
            serve::ServeStatus::kShardFailed);
  // The shard is dead: subsequent requests fast-fail, nothing hangs.
  EXPECT_EQ(server.try_infer(handle, sample.data(), logits.data()),
            serve::ServeStatus::kShardFailed);
  const auto stats = server.stats("m");
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(stats.restores, 0u);
  EXPECT_EQ(stats.replicas_dead, 1);
  EXPECT_EQ(fail::triggers("serve.restore"), 2u);  // both attempts failed
  // The throwing wrapper surfaces the same outcome as a check_error.
  EXPECT_THROW(server.infer(handle, sample.data(), logits.data()),
               check_error);
  server.stop();
}

// Parks the shard's only worker in a long restore backoff before it ever
// pops a request: serve.worker_batch throws at the top of the batch loop
// and the 10 s backoff keeps the replica quarantined for the duration of
// the test — a deterministic stand-in for a wedged worker.
serve::ServerOptions parked_worker_options() {
  serve::ServerOptions options;
  options.max_batch = 1;
  options.queue_capacity = 1;
  options.max_latency_us = 100;
  options.restore_backoff_us = 10'000'000;
  return options;
}

TEST_F(ServeRobustnessTest, ShedOverloadFastRejectsAtTheFullRing) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  const auto shape = graph.io_shape();
  serve::ServerOptions options = parked_worker_options();
  options.shed_overload = true;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  fail::arm("serve.worker_batch", fail::Policy::kEveryN, 1);
  server.start();

  const serve::ModelHandle handle = server.handle("m");
  std::vector<float> sample(
      static_cast<std::size_t>(kChannels * kSide * kSide), 0.5f);
  std::vector<float> logits(static_cast<std::size_t>(shape.out_features));

  // Producer A fills the 1-slot ring and blocks (no deadline).
  serve::ServeStatus status_a = serve::ServeStatus::kOk;
  std::thread producer([&] {
    status_a = server.try_infer(handle, sample.data(), logits.data());
  });
  ASSERT_TRUE(poll([&] { return server.stats("m").requests >= 1; }));

  // Ring full + shed_overload: immediate typed rejection, no blocking.
  std::vector<float> logits_b(logits.size());
  EXPECT_EQ(server.try_infer(handle, sample.data(), logits_b.data()),
            serve::ServeStatus::kOverloaded);
  EXPECT_EQ(server.stats("m").shed, 1u);
  // The worker quarantines itself asynchronously after start() — poll
  // rather than assert, the gauge flips whenever it first hits the armed
  // batch-loop failpoint.
  EXPECT_TRUE(poll([&] { return server.stats("m").replicas_quarantined == 1; }));

  // stop() interrupts the parked restore and completes the queued request:
  // producer A returns with kShuttingDown instead of hanging forever.
  server.stop();
  producer.join();
  EXPECT_EQ(status_a, serve::ServeStatus::kShuttingDown);
}

TEST_F(ServeRobustnessTest, DeadlineExpiryWhileQueuedIsCancelledAsTimeout) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  const auto shape = graph.io_shape();
  serve::BatchingServer server(parked_worker_options());
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  fail::arm("serve.worker_batch", fail::Policy::kEveryN, 1);
  server.start();

  const serve::ModelHandle handle = server.handle("m");
  std::vector<float> sample(
      static_cast<std::size_t>(kChannels * kSide * kSide), 0.5f);
  std::vector<float> logits(static_cast<std::size_t>(shape.out_features));
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_EQ(server.try_infer(handle, sample.data(), logits.data(),
                             /*deadline_us=*/30'000),
            serve::ServeStatus::kTimeout);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - begin);
  EXPECT_LT(elapsed.count(), 5000) << "timeout did not bound the call";
  const auto stats = server.stats("m");
  EXPECT_EQ(stats.timed_out, 1u);
  // The cancelled node was removed from the ring: capacity is free again.
  EXPECT_EQ(server.try_infer(handle, sample.data(), logits.data(),
                             /*deadline_us=*/10'000),
            serve::ServeStatus::kTimeout);
  server.stop();
}

TEST_F(ServeRobustnessTest, DrainDeadlineCompletesQueuedWorkOnStop) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  const auto shape = graph.io_shape();
  serve::ServerOptions options = parked_worker_options();
  options.drain_deadline_us = 20'000;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  fail::arm("serve.worker_batch", fail::Policy::kEveryN, 1);
  server.start();

  const serve::ModelHandle handle = server.handle("m");
  std::vector<float> sample(
      static_cast<std::size_t>(kChannels * kSide * kSide), 0.5f);
  std::vector<float> logits(static_cast<std::size_t>(shape.out_features));
  serve::ServeStatus status = serve::ServeStatus::kOk;
  std::thread producer([&] {
    status = server.try_infer(handle, sample.data(), logits.data());
  });
  ASSERT_TRUE(poll([&] { return server.stats("m").requests >= 1; }));

  const auto begin = std::chrono::steady_clock::now();
  server.stop();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - begin);
  producer.join();
  EXPECT_EQ(status, serve::ServeStatus::kShuttingDown);
  EXPECT_LT(elapsed.count(), 5000)
      << "stop() waited past the drain deadline on a wedged worker";

  // Late arrival after stop: typed rejection through a still-live handle.
  EXPECT_EQ(server.try_infer(handle, sample.data(), logits.data()),
            serve::ServeStatus::kShuttingDown);
}

TEST_F(ServeRobustnessTest, WarmupFailureSurfacesSynchronouslyFromStart) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  serve::BatchingServer server;
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(runtime::replicate(graph));
  replicas.push_back(runtime::replicate(graph));
  server.add_model("m", std::move(replicas));
  fail::arm("serve.warmup", fail::Policy::kOnce);
  EXPECT_THROW(server.start(), fail::injected_fault);
  // The failed start cleaned up: the server can start again (failpoint is
  // spent) and serve normally.
  server.start();
  const auto shape = server.model_shape("m");
  std::vector<float> sample(
      static_cast<std::size_t>(kChannels * kSide * kSide), 0.5f);
  std::vector<float> logits(static_cast<std::size_t>(shape.out_features));
  EXPECT_EQ(server.try_infer(server.handle("m"), sample.data(),
                             logits.data()),
            serve::ServeStatus::kOk);
  server.stop();
}

TEST_F(ServeRobustnessTest, PooledSubmitFaultQuarantinesTheReplica) {
  // A thread-pool submission failure inside a pooled replica's forward
  // surfaces on the shard worker and takes the quarantine path like any
  // kernel fault; the sibling (and later the restored replica) serves the
  // requeued batch.
  runtime::CompiledGraph graph = make_calibrated_graph();
  const auto shape = graph.io_shape();
  const std::int64_t sample_numel = kChannels * kSide * kSide;
  Rng rng(8200);
  Tensor samples = random_tensor({4, kChannels, kSide, kSide}, rng);

  serve::ServerOptions options;
  options.max_batch = 4;
  // A generous latency bound makes batching deterministic: a worker that
  // wakes on the first enqueue of a wave keeps waiting for the full batch
  // instead of flushing a partial one. That matters because only a
  // multi-sample forward has enough GEMM row tiles to actually SUBMIT to
  // the pool — a batch-1 forward of this tiny graph takes the serial
  // fallback and never evaluates the failpoint.
  options.max_latency_us = 200'000;
  options.restore_backoff_us = 200;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(runtime::replicate(graph));
  replicas.push_back(runtime::replicate(graph));
  for (auto& replica : replicas) replica.set_pooled(true);
  server.add_model("m", std::move(replicas));
  server.start();  // warmup submits to the pool too: arm only afterwards

  fail::arm("threadpool.submit", fail::Policy::kOnce);
  const serve::ModelHandle handle = server.handle("m");
  std::atomic<std::uint64_t> failures{0};
  // Full-batch waves of exactly max_batch concurrent requests, until one
  // wave's pooled forward trips the armed submit point (the first full
  // batch should; the bound only guards against kernel-geometry drift).
  for (int wave = 0; wave < 50 && fail::triggers("threadpool.submit") == 0;
       ++wave) {
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&, p] {
        std::vector<float> logits(
            static_cast<std::size_t>(shape.out_features));
        const int s = p % 4;
        if (server.try_infer(handle, samples.data() + s * sample_numel,
                             logits.data()) != serve::ServeStatus::kOk) {
          ++failures;
        }
      });
    }
    for (std::thread& producer : producers) producer.join();
  }
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(fail::triggers("threadpool.submit"), 1u);
  EXPECT_GE(server.stats("m").quarantines, 1u);
  EXPECT_TRUE(poll([&] { return server.stats("m").restores >= 1; }));
  server.stop();
}

#endif  // CSQ_FAILPOINTS_ENABLED

TEST(ServeRobustness, StaleHandleResolvesToShuttingDown) {
  // ModelHandle is a weak reference: one that outlives stop() — or the
  // whole server — degrades to kShuttingDown instead of dereferencing a
  // destroyed shard (the PR-4 handle was a raw pointer; this is the fix).
  std::vector<float> sample(
      static_cast<std::size_t>(kChannels * kSide * kSide), 0.5f);
  std::vector<float> logits(16);
  serve::ModelHandle stale;
  EXPECT_FALSE(stale.valid());  // default-constructed: never bound
  {
    serve::BatchingServer server;
    std::vector<runtime::CompiledGraph> replicas;
    replicas.push_back(make_calibrated_graph());
    server.add_model("m", std::move(replicas));
    server.start();
    stale = server.handle("m");
    EXPECT_TRUE(stale.valid());
    server.stop();
    // Stopped but alive: the shard still exists, requests are rejected.
    EXPECT_TRUE(stale.valid());
    EXPECT_EQ(server.try_infer(stale, sample.data(), logits.data()),
              serve::ServeStatus::kShuttingDown);
    EXPECT_THROW(server.infer(stale, sample.data(), logits.data()),
                 check_error);
  }
  // Server destroyed: the handle must detect it, not touch freed memory.
  EXPECT_FALSE(stale.valid());
}

}  // namespace
}  // namespace csq
