// Serving-layer tests: persisted CompiledGraph artifacts and the
// request-batching server.
//
//  * artifact round trip: save -> load -> forward is BIT-identical to the
//    directly-lowered graph, with the layer section still readable by the
//    plain model-container loader (v3 = v2 layers + graph section);
//  * replicate(): in-memory program replay is bit-identical too;
//  * N-producer concurrency stress with per-request result verification
//    against precomputed single-sample forwards (serial and pooled
//    replicas);
//  * flush-policy edge cases: batch of 1, exactly max-batch, timer-driven
//    flushes;
//  * zero steady-state heap allocations on the request path under 4
//    concurrent producers, using the global operator-new counter
//    (alloc_probe.h) shared with hotpath_test.cpp.
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "alloc_probe.h"
#include "core/csq_weight.h"
#include "core/model_io.h"
#include "nn/models.h"
#include "runtime/compiled_graph.h"
#include "runtime/graph_artifact.h"
#include "serve/batching_server.h"
#include "test_helpers.h"
#include "util/check.h"
#include "util/rng.h"

namespace csq {
namespace {

using testing::alloc_count;
using testing::random_tensor;

constexpr std::int64_t kSide = 12;
constexpr std::int64_t kChannels = 3;

// Unique temp path per test AND process, so parallel ctest and repeated
// concurrent invocations of the same test never collide on artifacts.
std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "csq_serve_" + tag + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".csqm";
}

// A small finalized 3-bit CSQ ResNet-20, lowered and calibrated — the
// serving substrate every test below starts from.
runtime::CompiledGraph make_calibrated_graph(Model* model_out = nullptr) {
  Rng rng(7001);
  std::vector<CsqWeightSource*> registry;
  ModelConfig model_config;
  model_config.base_width = 4;
  CsqWeightOptions weight_options;
  weight_options.fixed_precision = 3;
  Model model = make_resnet20(
      model_config, csq_weight_factory(&registry, weight_options), nullptr,
      rng);
  for (CsqWeightSource* source : registry) source->finalize();

  runtime::LowerOptions options;
  options.in_channels = kChannels;
  options.in_height = kSide;
  options.in_width = kSide;
  runtime::CompiledGraph graph = runtime::lower(model, options);
  Rng calib_rng(7002);
  Tensor calib = random_tensor({8, kChannels, kSide, kSide}, calib_rng);
  graph.calibrate(calib);
  if (model_out != nullptr) *model_out = std::move(model);
  return graph;
}

void expect_bit_identical(const Tensor& a, const Tensor& b,
                          const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << ": logit " << i;
  }
}

// ------------------------------------------------------- graph artifact --

TEST(GraphArtifact, SaveLoadForwardIsBitIdenticalToDirectLowering) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  Rng rng(7003);
  Tensor images = random_tensor({5, kChannels, kSide, kSide}, rng);
  const Tensor direct = graph.forward(images);

  const std::string path = temp_path("roundtrip");
  ASSERT_TRUE(runtime::save_graph(path, graph));

  // The float model does not exist on this path: load_graph replays the
  // persisted program only.
  runtime::CompiledGraph serial = runtime::load_graph(path, /*pooled=*/false);
  const Tensor from_serial = serial.forward(images);
  expect_bit_identical(direct, from_serial, "loaded (serial)");

  runtime::CompiledGraph pooled = runtime::load_graph(path, /*pooled=*/true);
  const Tensor from_pooled = pooled.forward(images);
  expect_bit_identical(direct, from_pooled, "loaded (pooled)");

  // Introspection survives the round trip.
  EXPECT_EQ(serial.layers().size(), graph.layers().size());
  EXPECT_EQ(serial.weight_storage_bits(), graph.weight_storage_bits());
  const auto shape = serial.io_shape();
  EXPECT_EQ(shape.channels, kChannels);
  EXPECT_EQ(shape.height, kSide);
  EXPECT_EQ(shape.width, kSide);
  EXPECT_EQ(shape.out_features, 10);
  std::remove(path.c_str());
}

TEST(GraphArtifact, LayerSectionReadsAsPlainModelContainer) {
  Model model;
  runtime::CompiledGraph graph = make_calibrated_graph(&model);
  const std::string path = temp_path("layer_section");
  ASSERT_TRUE(runtime::save_graph(path, graph));

  // v3 = v2 layer section + graph section: the plain loader reads the
  // weights and ignores the graph payload.
  const auto layers = load_quantized_model(path);
  ASSERT_EQ(layers.size(), model.quant_layers().size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    EXPECT_EQ(layers[l].name, model.quant_layers()[l].name);
    EXPECT_EQ(shape_numel(layers[l].shape),
              model.quant_layers()[l].source->weight_count());
  }
  std::remove(path.c_str());
}

TEST(GraphArtifact, RejectsUncalibratedGraphsAndPlainContainers) {
  // Saving before calibrate(): edge scales are unresolved.
  Rng rng(7004);
  std::vector<CsqWeightSource*> registry;
  ModelConfig model_config;
  model_config.base_width = 4;
  Model model = make_resnet20(model_config, csq_weight_factory(&registry),
                              nullptr, rng);
  for (CsqWeightSource* source : registry) source->finalize();
  runtime::LowerOptions options;
  options.in_height = kSide;
  options.in_width = kSide;
  runtime::CompiledGraph graph = runtime::lower(model, options);
  const std::string path = temp_path("uncalibrated");
  EXPECT_THROW(runtime::save_graph(path, graph), check_error);

  // The server rejects uncalibrated replicas at registration — not from a
  // worker thread mid-warmup.
  serve::BatchingServer server;
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  EXPECT_THROW(server.add_model("uncalibrated", std::move(replicas)),
               check_error);

  // load_graph refuses a v2 container (no graph section).
  const std::string plain = temp_path("plain_v2");
  ASSERT_TRUE(save_quantized_model(plain, export_model(model)));
  EXPECT_THROW(runtime::load_graph(plain), check_error);
  std::remove(plain.c_str());
}

TEST(GraphArtifact, ReplicateIsBitIdentical) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  runtime::CompiledGraph copy = runtime::replicate(graph);
  Rng rng(7005);
  Tensor images = random_tensor({3, kChannels, kSide, kSide}, rng);
  expect_bit_identical(graph.forward(images), copy.forward(images),
                       "replica");
}

TEST(BatchingServer, ReplicaFootprintIsLivenessColored) {
  // Every worker pays one graph workspace; the liveness-colored plan (the
  // default) must keep each replica's footprint well under the
  // one-slot-per-edge policy every replica paid through PR 4.
  runtime::CompiledGraph graph = make_calibrated_graph();
  runtime::LowerOptions baseline_options = graph.options();
  baseline_options.plan_buffers = false;
  runtime::CompiledGraph baseline =
      runtime::build_graph(graph.program(), baseline_options);
  baseline.restore_edge_scales(graph.edge_scales());

  serve::ServerOptions options;
  options.max_batch = 8;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(runtime::replicate(graph));
  replicas.push_back(runtime::replicate(graph));
  server.add_model("model", std::move(replicas));
  server.start();

  // Warmup prepared every replica for max_batch; size the baseline the
  // same way before comparing.
  baseline.prepare(options.max_batch);
  const std::vector<std::int64_t> footprints =
      server.replica_workspace_bytes("model");
  ASSERT_EQ(footprints.size(), 2u);
  for (const std::int64_t bytes : footprints) {
    EXPECT_GT(bytes, 0);
    EXPECT_LT(bytes * 2, baseline.workspace_bytes())
        << "replica " << bytes << "B vs one-slot-per-edge baseline "
        << baseline.workspace_bytes() << "B";
  }
  server.stop();
}

// -------------------------------------------------------- batching server --

// Expected logits for `count` distinct samples, computed one sample at a
// time — the serial single-sample reference the batched server must match
// bit for bit.
struct ExpectedSet {
  Tensor samples;           // (count, C, H, W)
  std::vector<Tensor> logits;  // per sample
  std::int64_t sample_numel = 0;
  std::int64_t out_features = 0;
};

ExpectedSet make_expected(runtime::CompiledGraph& graph, int count,
                          std::uint64_t seed) {
  ExpectedSet expected;
  Rng rng(seed);
  expected.samples = random_tensor({count, kChannels, kSide, kSide}, rng);
  expected.sample_numel = kChannels * kSide * kSide;
  expected.out_features = graph.io_shape().out_features;
  for (int s = 0; s < count; ++s) {
    Tensor one({1, kChannels, kSide, kSide});
    std::memcpy(one.data(),
                expected.samples.data() + s * expected.sample_numel,
                static_cast<std::size_t>(expected.sample_numel) *
                    sizeof(float));
    expected.logits.push_back(graph.forward(one));
  }
  return expected;
}

// Drives `producers` threads of `iterations` requests each against the
// server, each request verified bit-for-bit against the expected set.
// Returns the number of mismatched requests.
std::uint64_t run_producers(serve::BatchingServer& server,
                            const std::string& model_id,
                            const ExpectedSet& expected, int producers,
                            int iterations) {
  const serve::ModelHandle handle = server.handle(model_id);
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      std::vector<float> logits(
          static_cast<std::size_t>(expected.out_features));
      const int count = static_cast<int>(expected.logits.size());
      for (int i = 0; i < iterations; ++i) {
        const int s = (p * 31 + i * 7) % count;
        server.infer(handle,
                     expected.samples.data() + s * expected.sample_numel,
                     logits.data());
        if (std::memcmp(logits.data(), expected.logits
                            [static_cast<std::size_t>(s)].data(),
                        logits.size() * sizeof(float)) != 0) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return mismatches.load();
}

TEST(BatchingServer, ConcurrentProducersGetBitIdenticalResults) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  ExpectedSet expected = make_expected(graph, 16, 7100);
  const std::string path = temp_path("stress");
  ASSERT_TRUE(runtime::save_graph(path, graph));

  serve::ServerOptions options;
  options.max_batch = 8;
  options.max_latency_us = 200;
  serve::BatchingServer server(options);
  // Artifact-loaded replicas: the serving process path.
  server.add_model_from_artifact("resnet20", path, /*replicas=*/2);
  server.start();

  EXPECT_EQ(run_producers(server, "resnet20", expected, /*producers=*/6,
                          /*iterations=*/40),
            0u);
  const auto stats = server.stats("resnet20");
  EXPECT_EQ(stats.requests, 6u * 40u);
  EXPECT_GE(stats.batches, stats.requests / 8);
  EXPECT_LE(stats.max_batch_observed, 8);
  server.stop();
  std::remove(path.c_str());
}

TEST(BatchingServer, PooledReplicasShareTheThreadPoolSafely) {
  // Replicas with in-graph pooled execution: concurrent top-level
  // parallel_for submissions from the shard workers must queue on the
  // shared pool, not throw or race.
  runtime::CompiledGraph graph = make_calibrated_graph();
  ExpectedSet expected = make_expected(graph, 8, 7200);

  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(runtime::replicate(graph));
  replicas.push_back(runtime::replicate(graph));
  for (auto& replica : replicas) replica.set_pooled(true);

  serve::ServerOptions options;
  options.max_batch = 4;
  options.max_latency_us = 100;
  serve::BatchingServer server(options);
  server.add_model("pooled", std::move(replicas));
  server.start();
  EXPECT_EQ(run_producers(server, "pooled", expected, /*producers=*/4,
                          /*iterations=*/15),
            0u);
  server.stop();
}

TEST(BatchingServer, RoutesRequestsAcrossModels) {
  // Two models with different weights behind one server: responses must
  // come from the addressed model.
  runtime::CompiledGraph graph_a = make_calibrated_graph();
  ExpectedSet expected_a = make_expected(graph_a, 4, 7300);

  Rng rng(7301);
  std::vector<CsqWeightSource*> registry;
  ModelConfig model_config;
  model_config.base_width = 8;  // different widths -> different logits
  CsqWeightOptions weight_options;
  weight_options.fixed_precision = 3;
  Model model_b = make_resnet20(
      model_config, csq_weight_factory(&registry, weight_options), nullptr,
      rng);
  for (CsqWeightSource* source : registry) source->finalize();
  runtime::LowerOptions lower_options;
  lower_options.in_height = kSide;
  lower_options.in_width = kSide;
  runtime::CompiledGraph graph_b = runtime::lower(model_b, lower_options);
  Rng calib_rng(7302);
  Tensor calib = random_tensor({8, kChannels, kSide, kSide}, calib_rng);
  graph_b.calibrate(calib);
  ExpectedSet expected_b = make_expected(graph_b, 4, 7300);  // same samples

  serve::ServerOptions options;
  options.max_batch = 4;
  options.max_latency_us = 100;
  serve::BatchingServer server(options);
  {
    std::vector<runtime::CompiledGraph> replicas_a;
    replicas_a.push_back(std::move(graph_a));
    server.add_model("model_a", std::move(replicas_a));
    std::vector<runtime::CompiledGraph> replicas_b;
    replicas_b.push_back(std::move(graph_b));
    server.add_model("model_b", std::move(replicas_b));
  }
  server.start();
  EXPECT_EQ(run_producers(server, "model_a", expected_a, 2, 10), 0u);
  EXPECT_EQ(run_producers(server, "model_b", expected_b, 2, 10), 0u);
  EXPECT_EQ(server.stats("model_a").requests, 20u);
  EXPECT_EQ(server.stats("model_b").requests, 20u);
  EXPECT_THROW(server.handle("model_c"), check_error);
  server.stop();
}

// ------------------------------------------------------- flush policy ----

TEST(BatchingServer, SingleRequestFlushesOnTheLatencyTimer) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  ExpectedSet expected = make_expected(graph, 1, 7400);

  serve::ServerOptions options;
  options.max_batch = 8;
  options.max_latency_us = 500;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  server.start();

  std::vector<float> logits(
      static_cast<std::size_t>(expected.out_features));
  server.infer("m", expected.samples.data(), logits.data());
  EXPECT_EQ(std::memcmp(logits.data(), expected.logits[0].data(),
                        logits.size() * sizeof(float)),
            0);
  const auto stats = server.stats("m");
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.timer_flushes, 1u);  // batch of 1, far below max_batch
  EXPECT_EQ(stats.full_flushes, 0u);
  EXPECT_EQ(stats.max_batch_observed, 1);
  server.stop();
}

TEST(BatchingServer, DeadlineSemanticsArePinned) {
  // The {-1, 0, >0} deadline contract is load-bearing for the wire
  // protocol (serve/transport.h encodes -1 as THE no-deadline value), so
  // pin each case against a server whose flush timer dwarfs the test: a
  // lone request sits on the timer, making expiry deterministic.
  runtime::CompiledGraph graph = make_calibrated_graph();
  ExpectedSet expected = make_expected(graph, 1, 7450);

  serve::ServerOptions options;
  options.max_batch = 16;
  options.max_latency_us = 300'000;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  server.start();
  const serve::ModelHandle handle = server.handle("m");

  std::vector<float> logits(
      static_cast<std::size_t>(expected.out_features));
  // deadline_us == 0: already expired on entry — admitted, then cancelled
  // with kTimeout (it is NOT "no deadline"; the 300 ms timer never fires).
  EXPECT_EQ(server.try_infer(handle, expected.samples.data(), logits.data(),
                             /*deadline_us=*/0),
            serve::ServeStatus::kTimeout);
  // A short positive deadline expires while queued, same outcome.
  EXPECT_EQ(server.try_infer(handle, expected.samples.data(), logits.data(),
                             /*deadline_us=*/1),
            serve::ServeStatus::kTimeout);
  // deadline_us == -1: no deadline — waits out the timer flush, succeeds,
  // and the result is bit-identical.
  EXPECT_EQ(server.try_infer(handle, expected.samples.data(), logits.data(),
                             /*deadline_us=*/-1),
            serve::ServeStatus::kOk);
  EXPECT_EQ(std::memcmp(logits.data(), expected.logits[0].data(),
                        logits.size() * sizeof(float)),
            0);
  EXPECT_EQ(server.stats("m").timed_out, 2u);
  server.stop();
}

TEST(BatchingServer, ExactlyMaxBatchFlushesFull) {
  // With an effectively infinite latency bound, the only way a batch can
  // flush is by filling: N producers of one request each must coalesce
  // into exactly one full batch of N.
  runtime::CompiledGraph graph = make_calibrated_graph();
  constexpr int kBatch = 4;
  ExpectedSet expected = make_expected(graph, kBatch, 7500);

  serve::ServerOptions options;
  options.max_batch = kBatch;
  options.max_latency_us = 60'000'000;  // one minute: the timer cannot win
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  server.start();

  EXPECT_EQ(run_producers(server, "m", expected, kBatch, 1), 0u);
  const auto stats = server.stats("m");
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kBatch));
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.full_flushes, 1u);
  EXPECT_EQ(stats.timer_flushes, 0u);
  EXPECT_EQ(stats.max_batch_observed, kBatch);
  server.stop();
}

TEST(BatchingServer, TimerFlushDrainsPartialBatches) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  ExpectedSet expected = make_expected(graph, 3, 7600);

  serve::ServerOptions options;
  options.max_batch = 64;  // far above the offered load
  options.max_latency_us = 1000;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(std::move(graph));
  server.add_model("m", std::move(replicas));
  server.start();

  EXPECT_EQ(run_producers(server, "m", expected, 3, 5), 0u);
  const auto stats = server.stats("m");
  EXPECT_EQ(stats.requests, 15u);
  EXPECT_GE(stats.timer_flushes, 1u);  // nothing can fill 64
  EXPECT_EQ(stats.full_flushes, 0u);
  EXPECT_LE(stats.max_batch_observed, 15);
  server.stop();
}

// --------------------------------------------- zero-allocation steady state

// Reusable two-phase rendezvous (mutex + cv only, so waiting producers add
// no heap traffic inside the measured window).
class Rendezvous {
 public:
  explicit Rendezvous(int parties) : parties_(parties) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::uint64_t generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != generation; });
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  const int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

TEST(BatchingServer, SteadyStateRequestPathIsAllocationFree) {
  runtime::CompiledGraph graph = make_calibrated_graph();
  ExpectedSet expected = make_expected(graph, 8, 7700);

  serve::ServerOptions options;
  options.max_batch = 4;
  options.max_latency_us = 200;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(runtime::replicate(graph));
  replicas.push_back(runtime::replicate(graph));
  for (auto& replica : replicas) replica.set_pooled(false);
  server.add_model("m", std::move(replicas));
  server.start();

  constexpr int kProducers = 4;
  constexpr int kWarmup = 10;
  constexpr int kMeasured = 30;
  Rendezvous warm(kProducers + 1), measured(kProducers + 1);
  std::atomic<std::uint64_t> mismatches{0};
  const serve::ModelHandle handle = server.handle("m");

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<float> logits(
          static_cast<std::size_t>(expected.out_features));
      const auto run = [&](int iterations) {
        const int count = static_cast<int>(expected.logits.size());
        for (int i = 0; i < iterations; ++i) {
          const int s = (p * 13 + i * 5) % count;
          server.infer(handle,
                       expected.samples.data() + s * expected.sample_numel,
                       logits.data());
          if (std::memcmp(logits.data(),
                          expected.logits[static_cast<std::size_t>(s)].data(),
                          logits.size() * sizeof(float)) != 0) {
            ++mismatches;
          }
        }
      };
      run(kWarmup);
      warm.arrive_and_wait();      // main samples the counter here
      run(kMeasured);
      measured.arrive_and_wait();  // ... and here, before thread teardown
    });
  }

  warm.arrive_and_wait();
  const std::uint64_t before = alloc_count();
  measured.arrive_and_wait();
  const std::uint64_t delta = alloc_count() - before;
  for (std::thread& producer : producers) producer.join();

  EXPECT_EQ(delta, 0u)
      << "steady-state serving window hit the heap " << delta << " times";
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(server.stats("m").requests,
            static_cast<std::uint64_t>(kProducers * (kWarmup + kMeasured)));
  server.stop();
}

// -------------------------------------------- stats-path concurrency ----

TEST(BatchingServer, StatsSnapshotsRaceProducersSafely) {
  // Regression pin for the stats-path audit: stats() reads the flush-wait
  // ring, the counter struct and the liveness gauges while workers mutate
  // all three on every flush. Both sides hold the shard mutex, so a
  // snapshot must never be torn — this hammers the pair under the tsan
  // preset (serve_runtime label), where any unlocked access in either
  // direction is a hard failure, not a flake.
  runtime::CompiledGraph graph = make_calibrated_graph();
  ExpectedSet expected = make_expected(graph, 8, 7800);

  serve::ServerOptions options;
  options.max_batch = 4;
  options.max_latency_us = 100;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(runtime::replicate(graph));
  replicas.push_back(runtime::replicate(graph));
  server.add_model("m", std::move(replicas));
  server.start();

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      const auto stats = server.stats("m");
      // Internally consistent even mid-flood: gauges stay in range and the
      // p99 always comes from real (non-negative) wait samples.
      ASSERT_GE(stats.flush_wait_p99_us, 0);
      ASSERT_GE(stats.replicas_active, 0);
      ASSERT_LE(stats.max_batch_observed, 4);
    }
  });
  EXPECT_EQ(run_producers(server, "m", expected, /*producers=*/4,
                          /*iterations=*/50),
            0u);
  done.store(true);
  reader.join();

  const auto stats = server.stats("m");
  EXPECT_EQ(stats.requests, 4u * 50u);
  EXPECT_GE(stats.batches, stats.requests / 4);
  server.stop();
}

// ---------------------------------------------- idle-sibling borrowing ----

TEST(BatchingServer, BorrowedIdleCoresKeepBatch1BitIdentity) {
  // borrow_idle_cores at max_batch=1: every flush of the single replica is
  // a sole flush, so every forward runs with the borrowed in-graph pooled
  // execution — and must stay bit-identical to the serial oracle (the
  // wide-N column split's determinism contract, end to end).
  runtime::CompiledGraph graph = make_calibrated_graph();
  ExpectedSet expected = make_expected(graph, 8, 7900);

  serve::ServerOptions options;
  options.max_batch = 1;
  options.max_latency_us = 100;
  options.borrow_idle_cores = true;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(runtime::replicate(graph));
  replicas.front().set_pooled(false);
  server.add_model("m", std::move(replicas));
  server.start();

  EXPECT_EQ(run_producers(server, "m", expected, /*producers=*/1,
                          /*iterations=*/24),
            0u);
  const auto stats = server.stats("m");
  EXPECT_EQ(stats.requests, 24u);
  EXPECT_EQ(stats.borrowed_flushes, 24u);  // sole replica: every flush
  server.stop();
}

TEST(BatchingServer, BorrowingStaysBitIdenticalUnderContention) {
  // Two replicas, concurrent producers: grants flip on and off as flushes
  // overlap. The mode a batch happens to run in must never show in the
  // logits, and the release guard must leave the counter balanced (later
  // sole flushes still get grants).
  runtime::CompiledGraph graph = make_calibrated_graph();
  ExpectedSet expected = make_expected(graph, 8, 8000);

  serve::ServerOptions options;
  options.max_batch = 2;
  options.max_latency_us = 100;
  options.borrow_idle_cores = true;
  serve::BatchingServer server(options);
  std::vector<runtime::CompiledGraph> replicas;
  replicas.push_back(runtime::replicate(graph));
  replicas.push_back(runtime::replicate(graph));
  server.add_model("m", std::move(replicas));
  server.start();

  EXPECT_EQ(run_producers(server, "m", expected, /*producers=*/4,
                          /*iterations=*/25),
            0u);
  const auto stats = server.stats("m");
  EXPECT_EQ(stats.requests, 100u);
  EXPECT_GE(stats.borrowed_flushes, 1u);
  EXPECT_LE(stats.borrowed_flushes, stats.batches);
  server.stop();
}

}  // namespace
}  // namespace csq
