#include "alloc_probe.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace csq {
namespace testing {

std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace testing
}  // namespace csq
