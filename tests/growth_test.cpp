// The "growing" in the paper's title: when the model is *below* budget,
// DeltaS < 0 makes the regularizer negative, so gradient descent pushes
// mask logits up and layer precision grows toward the target. These tests
// exercise the growth direction, which the tables (always pruning from the
// 8-bit start) do not cover.
#include <gtest/gtest.h>

#include "core/csq_trainer.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "opt/trainer.h"

namespace csq {
namespace {

// Forces every CSQ source's mask to start at `bits` active bits by setting
// the logits directly (top bits active, matching the dynamic-range layout).
void force_initial_precision(const std::vector<CsqWeightSource*>& sources,
                             int bits, float magnitude = 0.3f) {
  for (CsqWeightSource* source : sources) {
    std::vector<Parameter*> params;
    source->collect_parameters(params);
    Parameter* mask = params.back();  // layout: s, (mp,mn)x8, mB
    for (int b = 0; b < CsqWeightSource::kBits; ++b) {
      mask->value[b] =
          b >= CsqWeightSource::kBits - bits ? magnitude : -magnitude;
    }
    mask->mark_updated();  // direct-mutation contract
  }
}

TEST(Growth, RegularizerGrowsPrecisionWhenBelowBudget) {
  SyntheticConfig data_config;
  data_config.num_classes = 4;
  data_config.train_samples = 96;
  data_config.test_samples = 48;
  data_config.height = 8;
  data_config.width = 8;
  data_config.noise_stddev = 0.3f;
  data_config.seed = 33;
  const SyntheticDataset data = make_synthetic(data_config);

  std::vector<CsqWeightSource*> sources;
  Rng rng(34);
  ModelConfig model_config;
  model_config.num_classes = 4;
  model_config.base_width = 4;
  Model model = make_resnet20(model_config, csq_weight_factory(&sources),
                              nullptr, rng);
  force_initial_precision(sources, 2);
  ASSERT_NEAR(average_precision(sources), 2.0, 1e-9);

  CsqTrainConfig config;
  config.train.epochs = 8;
  config.train.batch_size = 32;
  config.train.learning_rate = 0.05f;
  config.lambda = 0.05;
  config.target_bits = 6.0;  // well above the forced 2-bit start
  const CsqTrainResult result =
      train_csq(model, sources, data.train, data.test, config);

  // Precision grew toward the budget (strictly above the 2-bit start).
  EXPECT_GT(result.average_bits, 3.0);
  // And the trajectory shows the growth (monotone-ish rise at the front).
  EXPECT_GT(result.precision_trajectory.back(),
            result.precision_trajectory.front() - 0.5);
}

TEST(Growth, NoGrowthWithoutRegularizer) {
  // Control: with lambda = 0 the mask only feels the loss gradient; from a
  // deliberately-low start it cannot jump to high precision within a couple
  // of epochs the way the budget regularizer forces it to.
  SyntheticConfig data_config;
  data_config.num_classes = 4;
  data_config.train_samples = 64;
  data_config.test_samples = 32;
  data_config.height = 8;
  data_config.width = 8;
  data_config.seed = 35;
  const SyntheticDataset data = make_synthetic(data_config);

  std::vector<CsqWeightSource*> sources;
  Rng rng(36);
  ModelConfig model_config;
  model_config.num_classes = 4;
  model_config.base_width = 4;
  Model model = make_resnet20(model_config, csq_weight_factory(&sources),
                              nullptr, rng);
  force_initial_precision(sources, 2, /*magnitude=*/1.5f);

  CsqTrainConfig config;
  config.train.epochs = 3;
  config.train.batch_size = 32;
  config.train.learning_rate = 0.05f;
  config.lambda = 0.0;
  config.target_bits = 6.0;
  const CsqTrainResult result =
      train_csq(model, sources, data.train, data.test, config);
  EXPECT_LT(result.average_bits, 3.5);
}

TEST(Growth, DeltaSwitchesSignAcrossTheBudget) {
  // Single-source sanity of the budget drive used above.
  Rng rng(37);
  CsqWeightOptions options;
  options.fixed_precision = 4;
  CsqWeightSource source("s", {4, 4}, 4, options, rng);
  EXPECT_LT(budget_delta({&source}, 6.0), 0.0);  // below budget -> grow
  EXPECT_GT(budget_delta({&source}, 2.0), 0.0);  // above budget -> prune
}

}  // namespace
}  // namespace csq
