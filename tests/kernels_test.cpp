// Precision-specialized GEMM kernel tests:
//
//  * deterministic fuzz of the sub-byte storage round trips — sign/magnitude
//    bit-planes and signed nibble packing are exact inverses;
//  * the low-bit (K-quad vpmaddubsw), int16-accumulator and nibble prepacked
//    GEMMs against an exact int64 reference across odd shapes (K=1,
//    non-multiple-of-panel M/N, KC-crossing depths), both transpose forms,
//    the power-of-two alpha chain and accumulate mode;
//  * serial vs pooled bit-identity of every specialized entry point;
//  * the int16-accumulator eligibility bound;
//  * the deterministic kernel-selection policy and PackedIntWeights
//    bit-identity across every forced kernel kind.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/packed_weights.h"
#include "runtime/subbyte.h"
#include "tensor/gemm.h"
#include "util/rng.h"

namespace csq {
namespace {

using runtime::BitPlanes;
using runtime::PackedIntWeights;
using runtime::WeightKernel;

std::vector<std::int8_t> random_s8(std::int64_t count, Rng& rng,
                                   int magnitude) {
  std::vector<std::int8_t> values(static_cast<std::size_t>(count));
  for (auto& v : values) {
    v = static_cast<std::int8_t>(
        rng.uniform(-static_cast<float>(magnitude),
                    static_cast<float>(magnitude)));
  }
  return values;
}

std::vector<std::uint8_t> random_u8(std::int64_t count, Rng& rng) {
  std::vector<std::uint8_t> values(static_cast<std::size_t>(count));
  for (auto& v : values) {
    v = static_cast<std::uint8_t>(rng.uniform(0.0f, 255.0f));
  }
  return values;
}

// Exact reference: C = alpha * A * op(B) (+ C), int64 accumulation.
void reference_s8u8(Trans trans_b, std::int64_t m, std::int64_t n,
                    std::int64_t k, std::int32_t alpha, const std::int8_t* a,
                    const std::uint8_t* b, std::int64_t ldb, bool accumulate,
                    std::vector<std::int32_t>& c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        const std::int64_t bv = trans_b == Trans::no ? b[p * ldb + j]
                                                     : b[j * ldb + p];
        acc += static_cast<std::int64_t>(a[i * k + p]) * bv;
      }
      auto& dst = c[static_cast<std::size_t>(i * n + j)];
      dst = static_cast<std::int32_t>((accumulate ? dst : 0) + alpha * acc);
    }
  }
}

// ------------------------------------------------ sub-byte round trips ---

TEST(SubBytePacking, BitPlaneRoundTripFuzz) {
  Rng rng(4101);
  const std::int64_t counts[] = {1, 7, 63, 64, 65, 500, 4096};
  for (const std::int64_t count : counts) {
    for (const int magnitude : {1, 3, 7, 64, 127}) {
      const auto codes = random_s8(count, rng, magnitude);
      const BitPlanes planes = runtime::pack_bit_planes(codes.data(), count);
      EXPECT_EQ(planes.count, count);
      EXPECT_LE(planes.planes, 7);
      EXPECT_EQ(static_cast<std::int64_t>(planes.sign.size()),
                planes.words_per_plane());
      EXPECT_EQ(static_cast<std::int64_t>(planes.bits.size()),
                planes.planes * planes.words_per_plane());
      std::vector<std::int8_t> back(static_cast<std::size_t>(count));
      runtime::unpack_bit_planes(planes, back.data());
      EXPECT_EQ(codes, back) << "count=" << count << " mag=" << magnitude;
    }
  }
}

TEST(SubBytePacking, BitPlaneEdgeSpans) {
  // All-zero span: zero magnitude planes, sign words present but clear.
  const std::vector<std::int8_t> zeros(130, 0);
  const BitPlanes planes = runtime::pack_bit_planes(zeros.data(), 130);
  EXPECT_EQ(planes.planes, 0);
  std::vector<std::int8_t> back(130, 42);
  runtime::unpack_bit_planes(planes, back.data());
  EXPECT_EQ(zeros, back);

  // Binary +/-1 span packs into exactly one magnitude plane.
  std::vector<std::int8_t> binary(100);
  for (std::size_t i = 0; i < binary.size(); ++i) {
    binary[i] = (i % 2 == 0) ? 1 : -1;
  }
  const BitPlanes one = runtime::pack_bit_planes(
      binary.data(), static_cast<std::int64_t>(binary.size()));
  EXPECT_EQ(one.planes, 1);
  EXPECT_EQ(one.storage_bits(), 2 * static_cast<std::int64_t>(binary.size()));
}

TEST(SubBytePacking, NibbleRoundTripFuzz) {
  Rng rng(4102);
  const std::int64_t counts[] = {1, 2, 3, 64, 101, 1000};
  for (const std::int64_t count : counts) {
    auto codes = random_s8(count, rng, 7);
    // Hit both range ends explicitly.
    codes[0] = -8;
    if (count > 1) codes[1] = 7;
    std::vector<std::uint8_t> packed(
        static_cast<std::size_t>(runtime::nibble_bytes(count)));
    runtime::pack_nibbles(codes.data(), count, packed.data());
    std::vector<std::int8_t> back(static_cast<std::size_t>(count));
    runtime::unpack_nibbles(packed.data(), count, back.data());
    EXPECT_EQ(codes, back) << "count=" << count;
  }
  EXPECT_EQ(runtime::nibble_bytes(5), 3);
  EXPECT_EQ(runtime::nibble_bytes(6), 3);
}

// ------------------------------------------- specialized GEMM parity -----

enum class QuadPath { kLowBit, kWide, kNibble };

void run_quad(QuadPath path, Trans trans_b, std::int64_t m, std::int64_t n,
              std::int64_t k, std::int32_t alpha, const std::int8_t* a,
              const std::uint8_t* b, std::int64_t ldb, bool accumulate,
              bool pooled, std::vector<std::int32_t>& c) {
  if (path == QuadPath::kNibble) {
    std::vector<std::uint8_t> packed(
        static_cast<std::size_t>(gemm_s8u8_nibble_packed_a_size(m, k)));
    gemm_s8u8_nibble_pack_a(m, k, a, k, packed.data());
    if (pooled) {
      gemm_s8u8_nibble_prepacked_parallel(trans_b, m, n, k, alpha,
                                          packed.data(), b, ldb, accumulate,
                                          c.data(), n);
    } else {
      gemm_s8u8_nibble_prepacked(trans_b, m, n, k, alpha, packed.data(), b,
                                 ldb, accumulate, c.data(), n);
    }
    return;
  }
  std::vector<std::int8_t> packed(
      static_cast<std::size_t>(gemm_s8u8_lowbit_packed_a_size(m, k)));
  gemm_s8u8_lowbit_pack_a(m, k, a, k, packed.data());
  if (path == QuadPath::kWide) {
    if (pooled) {
      gemm_s8u8_lowbit_wide_prepacked_parallel(trans_b, m, n, k, alpha,
                                               packed.data(), b, ldb,
                                               accumulate, c.data(), n);
    } else {
      gemm_s8u8_lowbit_wide_prepacked(trans_b, m, n, k, alpha, packed.data(),
                                      b, ldb, accumulate, c.data(), n);
    }
  } else {
    if (pooled) {
      gemm_s8u8_lowbit_prepacked_parallel(trans_b, m, n, k, alpha,
                                          packed.data(), b, ldb, accumulate,
                                          c.data(), n);
    } else {
      gemm_s8u8_lowbit_prepacked(trans_b, m, n, k, alpha, packed.data(), b,
                                 ldb, accumulate, c.data(), n);
    }
  }
}

// Every specialized path against the exact reference and its own pooled
// variant, across panel-straddling shapes and the alpha/accumulate modes.
TEST(LowBitGemm, MatchesExactReferenceAcrossShapesAndModes) {
  Rng rng(4201);
  const std::int64_t m_extents[] = {1, 3, 8, 17, 64, 129};
  const std::int64_t n_extents[] = {1, 5, 8, 33};
  const std::int64_t k_extents[] = {1, 3, 4, 17, 256, 300};
  for (const std::int64_t m : m_extents) {
    for (const std::int64_t n : n_extents) {
      for (const std::int64_t k : k_extents) {
        for (const Trans trans_b : {Trans::no, Trans::yes}) {
          const std::int32_t alpha = (m + n + k) % 2 == 0 ? 1 : 2;
          const bool accumulate = (m + k) % 2 == 1;
          for (const QuadPath path :
               {QuadPath::kLowBit, QuadPath::kWide, QuadPath::kNibble}) {
            // Respect each path's exactness envelope: nibble codes live in
            // [-8, 7]; the wide path needs the int16 headroom bound.
            const int magnitude = path == QuadPath::kNibble ? 7 : 64;
            if (path == QuadPath::kWide &&
                !gemm_s8u8_wide_eligible(k, magnitude)) {
              continue;
            }
            const auto a = random_s8(m * k, rng, magnitude);
            const auto b = random_u8(k * n, rng);
            const std::int64_t ldb = trans_b == Trans::no ? n : k;
            std::vector<std::int32_t> expected(
                static_cast<std::size_t>(m * n));
            std::vector<std::int32_t> serial(
                static_cast<std::size_t>(m * n));
            std::vector<std::int32_t> pooled(
                static_cast<std::size_t>(m * n));
            if (accumulate) {
              for (std::size_t i = 0; i < expected.size(); ++i) {
                const auto seed =
                    static_cast<std::int32_t>(rng.uniform(-100.0f, 100.0f));
                expected[i] = serial[i] = pooled[i] = seed;
              }
            }
            reference_s8u8(trans_b, m, n, k, alpha, a.data(), b.data(), ldb,
                           accumulate, expected);
            run_quad(path, trans_b, m, n, k, alpha, a.data(), b.data(), ldb,
                     accumulate, /*pooled=*/false, serial);
            run_quad(path, trans_b, m, n, k, alpha, a.data(), b.data(), ldb,
                     accumulate, /*pooled=*/true, pooled);
            ASSERT_EQ(expected, serial)
                << "path=" << static_cast<int>(path) << " m=" << m
                << " n=" << n << " k=" << k << " alpha=" << alpha;
            ASSERT_EQ(serial, pooled)
                << "pooled mismatch path=" << static_cast<int>(path)
                << " m=" << m << " n=" << n << " k=" << k;
          }
        }
      }
    }
  }
}

// The wide kernel runs deep reductions only for codes narrow enough that a
// KC-depth block of vpmaddubsw partial sums fits int16.
TEST(LowBitGemm, WideEligibilityBound) {
  // Binary +/-1 layers qualify at any depth (the KC cap bounds the block).
  EXPECT_TRUE(gemm_s8u8_wide_eligible(1, 1));
  EXPECT_TRUE(gemm_s8u8_wide_eligible(1 << 20, 1));
  // |code| <= 2: one KC block of 128 quad-pairs * 510 stays under 32767.
  EXPECT_TRUE(gemm_s8u8_wide_eligible(128, 2));
  EXPECT_FALSE(gemm_s8u8_wide_eligible(130, 2));
  // |code| <= 64 only survives a four-deep reduction (two quad pairs).
  EXPECT_TRUE(gemm_s8u8_wide_eligible(4, 64));
  EXPECT_FALSE(gemm_s8u8_wide_eligible(5, 64));
}

TEST(LowBitGemm, AlphaPowerOfTwoChain) {
  // The split-layer chain drives the low-bit paths with alpha in {1, 2} and
  // the |alpha| <= 8 headroom documented at the entry points.
  Rng rng(4203);
  const std::int64_t m = 9, n = 11, k = 37;
  const auto a = random_s8(m * k, rng, 16);
  const auto b = random_u8(k * n, rng);
  for (const std::int32_t alpha : {1, 2, 4, 8}) {
    std::vector<std::int32_t> expected(static_cast<std::size_t>(m * n));
    std::vector<std::int32_t> actual(static_cast<std::size_t>(m * n));
    reference_s8u8(Trans::no, m, n, k, alpha, a.data(), b.data(), n,
                   /*accumulate=*/false, expected);
    run_quad(QuadPath::kLowBit, Trans::no, m, n, k, alpha, a.data(), b.data(),
             n, /*accumulate=*/false, /*pooled=*/false, actual);
    EXPECT_EQ(expected, actual) << "alpha=" << alpha;
  }
}

// --------------------------------------------------- kernel selection ----

std::vector<std::int32_t> spread_codes(std::int64_t count,
                                       std::int32_t magnitude, Rng& rng) {
  std::vector<std::int32_t> codes(static_cast<std::size_t>(count));
  for (auto& c : codes) {
    c = static_cast<std::int32_t>(
        rng.uniform(-static_cast<float>(magnitude),
                    static_cast<float>(magnitude) + 1.0f));
  }
  // Pin the extremes so max |code| is exactly `magnitude` and the layer's
  // power-of-two shift is 0 (an odd code is present).
  codes[0] = magnitude;
  if (count > 1) codes[1] = magnitude > 1 ? 1 : -magnitude;
  return codes;
}

TEST(KernelSelect, PolicyMatchesPrecision) {
  Rng rng(4301);
  const std::int64_t rows = 8;
  // 3-bit codes (|code| <= 7) at shallow depth: wide-eligible bit-serial.
  EXPECT_EQ(PackedIntWeights::select_kernel(spread_codes(8 * 16, 7, rng), 3,
                                            16),
            WeightKernel::kBitSerialWide);
  // Same codes at a depth past the int16 headroom: plain bit-serial.
  EXPECT_EQ(PackedIntWeights::select_kernel(spread_codes(8 * 2048, 7, rng),
                                            3, 2048),
            WeightKernel::kBitSerial);
  // 4-bit codes: nibble packing.
  {
    auto codes = spread_codes(rows * 64, 7, rng);
    EXPECT_EQ(PackedIntWeights::select_kernel(codes, 4, 64),
              WeightKernel::kNibble);
  }
  // Wide 8-bit codes: the s8u8 reference.
  EXPECT_EQ(PackedIntWeights::select_kernel(spread_codes(rows * 64, 120, rng),
                                            8, 64),
            WeightKernel::kS8U8);
  // Full-span codes force the hi/lo split, which only the reference runs.
  EXPECT_EQ(PackedIntWeights::select_kernel(spread_codes(rows * 64, 255, rng),
                                            8, 64),
            WeightKernel::kS8U8);
  // Selection is deterministic: same inputs, same answer.
  const auto codes = spread_codes(rows * 32, 3, rng);
  EXPECT_EQ(PackedIntWeights::select_kernel(codes, 2, 32),
            PackedIntWeights::select_kernel(codes, 2, 32));
}

TEST(KernelSelect, PackedWeightsBitIdenticalAcrossKernels) {
  Rng rng(4302);
  const std::int64_t rows = 13;
  const std::int64_t cols = 33;
  const std::int64_t n = 21;
  // |code| <= 7: every kernel kind is eligible (wide: only at shallow k, so
  // keep cols inside the |a|<=7 eligibility bound).
  ASSERT_TRUE(gemm_s8u8_wide_eligible(cols, 7));
  const auto codes = spread_codes(rows * cols, 7, rng);
  const auto b = random_u8(cols * n, rng);

  std::vector<std::vector<std::int32_t>> results;
  for (const WeightKernel kernel :
       {WeightKernel::kS8U8, WeightKernel::kBitSerial,
        WeightKernel::kBitSerialWide, WeightKernel::kNibble,
        WeightKernel::kAuto}) {
    PackedIntWeights packed(codes, /*step=*/0.01f, /*bits=*/3, rows, cols,
                            kernel);
    if (kernel != WeightKernel::kAuto) {
      EXPECT_EQ(packed.kernel(), kernel);
    }
    std::vector<std::int32_t> c(static_cast<std::size_t>(rows * n), -1);
    packed.gemm(Trans::no, n, b.data(), n, c.data(), n, /*pooled=*/false);
    std::vector<std::int32_t> pooled_c(static_cast<std::size_t>(rows * n),
                                       -1);
    packed.gemm(Trans::no, n, b.data(), n, pooled_c.data(), n,
                /*pooled=*/true);
    EXPECT_EQ(c, pooled_c) << runtime::weight_kernel_name(kernel);
    results.push_back(std::move(c));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i])
        << "kernel variant " << i << " diverged from the s8u8 reference";
  }
}

TEST(KernelSelect, BitSerialLayersCarryPlanes) {
  Rng rng(4303);
  const auto codes = spread_codes(8 * 32, 7, rng);
  PackedIntWeights packed(codes, 0.01f, 3, 8, 32);
  ASSERT_TRUE(packed.kernel() == WeightKernel::kBitSerial ||
              packed.kernel() == WeightKernel::kBitSerialWide);
  const BitPlanes* planes = packed.bit_planes();
  ASSERT_NE(planes, nullptr);
  EXPECT_EQ(planes->count, 8 * 32);
  EXPECT_LE(planes->planes, 3);
  // The planes ARE the storage: 1 sign + magnitude bits per weight.
  EXPECT_EQ(planes->storage_bits(),
            planes->count * (1 + planes->planes));

  PackedIntWeights wide(spread_codes(8 * 32, 100, rng), 0.01f, 8, 8, 32);
  EXPECT_EQ(wide.kernel(), WeightKernel::kS8U8);
  EXPECT_EQ(wide.bit_planes(), nullptr);
}

}  // namespace
}  // namespace csq
