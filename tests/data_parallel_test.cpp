// Determinism tests for data-parallel training (opt/data_parallel): the
// optimizer step must be bit-identical to serial execution at every worker
// count, for every weight-source family (including the stateful LQ-Nets
// QEM quantizer), with batchnorm running statistics reproduced exactly and
// zero steady-state heap allocations.
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "alloc_probe.h"
#include "core/csq_trainer.h"
#include "core/csq_weight.h"
#include "data/dataloader.h"
#include "data/synthetic.h"
#include "nn/batchnorm.h"
#include "nn/models.h"
#include "opt/data_parallel.h"
#include "quant/bsq_weight.h"
#include "quant/dorefa_weight.h"
#include "quant/lqnets_weight.h"
#include "quant/ste_uniform_weight.h"
#include "util/rng.h"

namespace csq {
namespace {

// Weight-source families under test. Each call returns a FRESH factory so
// registry-recording families (csq, bsq) never share registries between
// models; the registries are kept alive by the returned closure.
WeightSourceFactory family_factory(const std::string& family) {
  if (family == "dense") return dense_weight_factory();
  if (family == "ste") return ste_uniform_weight_factory(3);
  if (family == "dorefa") return dorefa_weight_factory(3);
  if (family == "lqnets") return lqnets_weight_factory(2);
  if (family == "csq") {
    auto registry = std::make_shared<std::vector<CsqWeightSource*>>();
    WeightSourceFactory base = csq_weight_factory(registry.get());
    return [registry, base](const std::string& name,
                            std::vector<std::int64_t> shape,
                            std::int64_t fan_in, Rng& rng) {
      return base(name, std::move(shape), fan_in, rng);
    };
  }
  if (family == "bsq") {
    auto registry = std::make_shared<std::vector<BsqWeightSource*>>();
    WeightSourceFactory base = bsq_weight_factory(registry.get());
    return [registry, base](const std::string& name,
                            std::vector<std::int64_t> shape,
                            std::int64_t fan_in, Rng& rng) {
      return base(name, std::move(shape), fan_in, rng);
    };
  }
  ADD_FAILURE() << "unknown family " << family;
  return dense_weight_factory();
}

const std::vector<std::string>& all_families() {
  static const std::vector<std::string> families = {
      "dense", "csq", "bsq", "ste", "dorefa", "lqnets"};
  return families;
}

Model build_model(const std::string& family) {
  Rng rng(13);  // fixed seed: every build of a family is identical
  ModelConfig config;
  config.num_classes = 4;
  config.base_width = 4;
  return make_resnet_cifar(8, config, family_factory(family), nullptr, rng);
}

SyntheticDataset tiny_data() {
  SyntheticConfig config;
  config.num_classes = 4;
  config.train_samples = 96;
  config.test_samples = 32;
  config.height = 8;
  config.width = 8;
  config.seed = 12;
  return make_synthetic(config);
}

SgdConfig sgd_config() {
  SgdConfig config;
  config.learning_rate = 0.05f;
  config.momentum = 0.9f;
  config.weight_decay = 5e-4f;
  return config;
}

struct RunResult {
  std::vector<float> values;      // final primary arena values
  std::vector<float> losses;      // per-step batch losses
  std::vector<int> corrects;      // per-step top-1 matches
  std::vector<float> bn_stats;    // concatenated running mean/var
};

std::vector<float> collect_bn_stats(Model& model) {
  std::vector<float> stats;
  model.for_each_module([&stats](Module& module) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&module)) {
      const Tensor& mean = bn->running_mean();
      const Tensor& var = bn->running_var();
      stats.insert(stats.end(), mean.data(), mean.data() + mean.numel());
      stats.insert(stats.end(), var.data(), var.data() + var.numel());
    }
  });
  return stats;
}

void run_steps(const std::string& family, int workers,
               std::int64_t micro_batch, int steps, RunResult* result,
               std::int64_t batch_size = 32) {
  const SyntheticDataset data = tiny_data();
  Model model = build_model(family);

  DataParallelConfig dp_config;
  dp_config.workers = workers;
  dp_config.micro_batch = micro_batch;
  DataParallelTrainer trainer(
      model, [&family] { return build_model(family); }, dp_config);
  Sgd optimizer(model.arena(), sgd_config());

  DataLoader loader(data.train, batch_size, /*shuffle=*/true, Rng(3));
  loader.start_epoch();
  Batch batch;
  for (int i = 0; i < steps; ++i) {
    if (!loader.next(batch)) {
      loader.start_epoch();
      ASSERT_TRUE(loader.next(batch)) << "empty loader";
    }
    const DataParallelTrainer::StepStats stats =
        trainer.train_step(batch, optimizer);
    result->losses.push_back(stats.loss);
    result->corrects.push_back(stats.correct);
  }

  const ParameterArena& arena = model.arena();
  result->values.assign(arena.values(), arena.values() + arena.size());
  result->bn_stats = collect_bn_stats(model);
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.values.size(), b.values.size()) << label;
  EXPECT_EQ(std::memcmp(a.values.data(), b.values.data(),
                        a.values.size() * sizeof(float)),
            0)
      << label << ": parameter values diverged";
  ASSERT_EQ(a.losses.size(), b.losses.size()) << label;
  for (std::size_t i = 0; i < a.losses.size(); ++i) {
    EXPECT_EQ(a.losses[i], b.losses[i])
        << label << ": loss diverged at step " << i;
  }
  EXPECT_EQ(a.corrects, b.corrects) << label << ": accuracy diverged";
  ASSERT_EQ(a.bn_stats.size(), b.bn_stats.size()) << label;
  EXPECT_EQ(std::memcmp(a.bn_stats.data(), b.bn_stats.data(),
                        a.bn_stats.size() * sizeof(float)),
            0)
      << label << ": batchnorm running stats diverged";
}

// ---- bit-identity across worker counts ------------------------------------

TEST(DataParallel, BitIdenticalAcrossWorkerCountsAllFamilies) {
  for (const std::string& family : all_families()) {
    SCOPED_TRACE(family);
    // Default shard grid (micro_batch 0): batch 32 -> 8 shards of 4 rows,
    // the same grid at every worker count.
    RunResult reference;
    ASSERT_NO_FATAL_FAILURE(run_steps(family, /*workers=*/1,
                                      /*micro_batch=*/0, /*steps=*/3,
                                      &reference));
    for (const int workers : {2, 4, 8}) {
      RunResult run;
      ASSERT_NO_FATAL_FAILURE(
          run_steps(family, workers, /*micro_batch=*/0, /*steps=*/3, &run));
      expect_identical(reference, run,
                       family + " x" + std::to_string(workers));
    }
  }
}

TEST(DataParallel, IdleReplicasStayInLockstep) {
  // 5-row batches at micro_batch 2 make 3 shards: with 4 workers one
  // replica gets no shard and must advance its quantizer state anyway.
  // LQ-Nets is the stateful family this exercises hardest (its QEM basis
  // evolves once per step).
  for (const std::string& family : {std::string("lqnets"),
                                    std::string("csq")}) {
    SCOPED_TRACE(family);
    RunResult reference;
    ASSERT_NO_FATAL_FAILURE(run_steps(family, /*workers=*/1,
                                      /*micro_batch=*/2, /*steps=*/3,
                                      &reference, /*batch_size=*/5));
    RunResult wide;
    ASSERT_NO_FATAL_FAILURE(run_steps(family, /*workers=*/4,
                                      /*micro_batch=*/2, /*steps=*/3, &wide,
                                      /*batch_size=*/5));
    expect_identical(reference, wide, family + " idle-replica");
  }
}

// ---- single-shard grid == classic serial loop -----------------------------

TEST(DataParallel, SingleShardEpochMatchesClassicTrainOneEpoch) {
  for (const std::string& family : all_families()) {
    SCOPED_TRACE(family);
    const SyntheticDataset data = tiny_data();

    Model classic = build_model(family);
    Sgd classic_opt(classic.arena(), sgd_config());
    DataLoader classic_loader(data.train, 32, /*shuffle=*/true, Rng(3));
    const EpochStats classic_stats =
        train_one_epoch(classic, classic_opt, classic_loader, FitHooks{});

    Model parallel = build_model(family);
    DataParallelConfig dp_config;
    dp_config.workers = 1;
    dp_config.micro_batch = 64;  // >= batch size: one shard
    DataParallelTrainer trainer(parallel, nullptr, dp_config);
    Sgd parallel_opt(parallel.arena(), sgd_config());
    DataLoader parallel_loader(data.train, 32, /*shuffle=*/true, Rng(3));
    const EpochStats parallel_stats =
        train_one_epoch(trainer, parallel_opt, parallel_loader, FitHooks{});

    EXPECT_EQ(classic_stats.loss, parallel_stats.loss);
    EXPECT_EQ(classic_stats.accuracy, parallel_stats.accuracy);

    const ParameterArena& a = classic.arena();
    const ParameterArena& b = parallel.arena();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.values(), b.values(),
                          static_cast<std::size_t>(a.size()) * sizeof(float)),
              0)
        << family << ": single-shard DP diverged from the classic loop";

    const std::vector<float> bn_a = collect_bn_stats(classic);
    const std::vector<float> bn_b = collect_bn_stats(parallel);
    ASSERT_EQ(bn_a.size(), bn_b.size());
    EXPECT_EQ(std::memcmp(bn_a.data(), bn_b.data(),
                          bn_a.size() * sizeof(float)),
              0)
        << family << ": batchnorm stats diverged from the classic loop";
  }
}

// ---- data-parallel CSQ pipeline -------------------------------------------

TEST(DataParallel, CsqTrainingPipelineMatchesSerial) {
  const SyntheticDataset data = tiny_data();
  const auto run = [&data](int workers, std::int64_t micro_batch) {
    std::vector<CsqWeightSource*> sources;
    Rng rng(13);
    ModelConfig model_config;
    model_config.num_classes = 4;
    model_config.base_width = 4;
    Model model = make_resnet_cifar(8, model_config,
                                    csq_weight_factory(&sources), nullptr,
                                    rng);
    CsqTrainConfig config;
    config.train.epochs = 2;
    config.train.batch_size = 32;
    config.train.learning_rate = 0.05f;
    config.lambda = 0.05;
    config.target_bits = 3.0;
    config.data_parallel.workers = workers;
    config.data_parallel.micro_batch = micro_batch;
    const CsqTrainResult result = train_csq(
        model, sources, data.train, data.test, config, [] {
          std::vector<CsqWeightSource*> replica_sources;
          Rng replica_rng(13);
          ModelConfig replica_config;
          replica_config.num_classes = 4;
          replica_config.base_width = 4;
          // The replica registry is not retained: the trainer rediscovers
          // the sources through the model's quant-layer registry.
          return make_resnet_cifar(8, replica_config,
                                   csq_weight_factory(&replica_sources),
                                   nullptr, replica_rng);
        });
    std::vector<float> values;
    const ParameterArena& arena = model.arena();
    values.assign(arena.values(), arena.values() + arena.size());
    return std::make_pair(result, values);
  };

  const auto expect_same = [](const std::pair<CsqTrainResult,
                                              std::vector<float>>& a,
                              const std::pair<CsqTrainResult,
                                              std::vector<float>>& b,
                              const std::string& label) {
    ASSERT_EQ(a.second.size(), b.second.size()) << label;
    EXPECT_EQ(std::memcmp(a.second.data(), b.second.data(),
                          a.second.size() * sizeof(float)),
              0)
        << label << ": CSQ pipeline parameters diverged";
    EXPECT_EQ(a.first.test_accuracy, b.first.test_accuracy) << label;
    EXPECT_EQ(a.first.average_bits, b.first.average_bits) << label;
    ASSERT_EQ(a.first.precision_trajectory.size(),
              b.first.precision_trajectory.size())
        << label;
    for (std::size_t i = 0; i < a.first.precision_trajectory.size(); ++i) {
      EXPECT_EQ(a.first.precision_trajectory[i],
                b.first.precision_trajectory[i])
          << label << ": trajectory diverged at epoch " << i;
    }
  };

  // Worker-count invariance on the shared default shard grid: the grid (and
  // hence the gradient reduction tree) depends only on the batch geometry,
  // so 2 and 4 workers must produce bit-identical pipelines.
  ASSERT_NO_FATAL_FAILURE(
      expect_same(run(2, 0), run(4, 0), "dp x2 vs dp x4"));

  // A one-shard grid (micro_batch >= batch size) skips the shard rescale and
  // reduces a single span, so the data-parallel pipeline — idle replicas and
  // all — must be bit-identical to the classic serial training loop.
  ASSERT_NO_FATAL_FAILURE(
      expect_same(run(1, 0), run(4, 32), "serial vs one-shard dp x4"));
}

// ---- steady-state allocation discipline -----------------------------------

TEST(DataParallel, SteadyStateStepPerformsNoAllocations) {
  const SyntheticDataset data = tiny_data();
  Model model = build_model("dense");
  DataParallelConfig dp_config;
  dp_config.workers = 2;
  dp_config.micro_batch = 8;  // 4 shards over a 32-row batch
  DataParallelTrainer trainer(
      model, [] { return build_model("dense"); }, dp_config);
  Sgd optimizer(model.arena(), sgd_config());

  std::vector<int> indices(32);
  std::iota(indices.begin(), indices.end(), 0);
  const Batch batch = data.train.gather(indices);

  // Warmup: grow the shard buffers, the tensor pool and every per-replica
  // scratch vector to their steady-state high-water marks.
  for (int i = 0; i < 3; ++i) trainer.train_step(batch, optimizer);

  const std::uint64_t before = testing::alloc_count();
  trainer.train_step(batch, optimizer);
  EXPECT_EQ(testing::alloc_count() - before, 0u)
      << "steady-state data-parallel step hit the heap";
}

}  // namespace
}  // namespace csq
