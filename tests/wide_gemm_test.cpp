// Wide-N GEMM parallelism tests: the column-panel (kCols) and 2-D grid
// (kGrid) pooled decompositions.
//
//  * split-policy pins: gemm_choose_split / gemm_split_task_count for the
//    shapes the policy exists for — a wide-N GEMM with m as small as 1 (or
//    the m=2 batch loops the serial_threshold audit flagged) must schedule
//    more than one task, while tall-M shapes keep the classic row split;
//  * float bit-identity: serial gemm vs gemm_parallel under every forced
//    split mode at 1/2/4/8-way grids, all three transpose forms, beta and
//    alpha variations — exact equality, per the determinism contract;
//  * integer bit-identity: the s8u8 (direct + prepacked), low-bit K-quad,
//    int16-accumulator wide and nibble kernels against the exact int64
//    reference AND their serial entry points under forced column/grid
//    splits, including the split-plane alpha chain;
//  * PackedIntWeights::gemm wide-N dispatch: pooled vs serial bit-identity
//    for a split (hi/lo chained) layer at batch-1-like wide-N shapes.
//
// The split_ways override decouples the task grid from the physical thread
// count, so these tests exercise real 2/4/8-way decompositions even on a
// single-hardware-thread runner — bit-identity is a property of the grid,
// not of how many workers drain it.
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/packed_weights.h"
#include "tensor/gemm.h"
#include "util/rng.h"

namespace csq {
namespace {

using runtime::PackedIntWeights;
using runtime::WeightKernel;

std::vector<float> random_f32(std::int64_t count, Rng& rng) {
  std::vector<float> values(static_cast<std::size_t>(count));
  for (auto& v : values) v = rng.uniform(-1.0f, 1.0f);
  return values;
}

std::vector<std::int8_t> random_s8(std::int64_t count, Rng& rng,
                                   int magnitude) {
  std::vector<std::int8_t> values(static_cast<std::size_t>(count));
  for (auto& v : values) {
    v = static_cast<std::int8_t>(rng.uniform(
        -static_cast<float>(magnitude), static_cast<float>(magnitude)));
  }
  return values;
}

std::vector<std::uint8_t> random_u8(std::int64_t count, Rng& rng) {
  std::vector<std::uint8_t> values(static_cast<std::size_t>(count));
  for (auto& v : values) {
    v = static_cast<std::uint8_t>(rng.uniform(0.0f, 255.0f));
  }
  return values;
}

// Exact reference: C = alpha * A * op(B) (+ C), int64 accumulation.
void reference_s8u8(Trans trans_b, std::int64_t m, std::int64_t n,
                    std::int64_t k, std::int32_t alpha, const std::int8_t* a,
                    const std::uint8_t* b, std::int64_t ldb, bool accumulate,
                    std::vector<std::int32_t>& c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        const std::int64_t bv =
            trans_b == Trans::no ? b[p * ldb + j] : b[j * ldb + p];
        acc += static_cast<std::int64_t>(a[i * k + p]) * bv;
      }
      auto& dst = c[static_cast<std::size_t>(i * n + j)];
      dst = static_cast<std::int32_t>((accumulate ? dst : 0) + alpha * acc);
    }
  }
}

const GemmSplit kForcedSplits[] = {GemmSplit::kAuto, GemmSplit::kCols,
                                   GemmSplit::kGrid};
const int kWays[] = {1, 2, 4, 8};

// ------------------------------------------------------- split policy ----

TEST(WideGemm, ChoosesColumnSplitForWideSmallM) {
  // The head-matmul family: one row tile, many column panels.
  EXPECT_EQ(gemm_choose_split(1, 512, 4), GemmSplit::kCols);
  EXPECT_EQ(gemm_choose_split(1, 1000, 8), GemmSplit::kCols);
  EXPECT_EQ(gemm_choose_split(8, 1000, 4), GemmSplit::kCols);
  EXPECT_EQ(gemm_choose_split(64, 512, 2), GemmSplit::kCols);
  // ... and they schedule real parallelism: ways tasks when the panels
  // allow it.
  EXPECT_EQ(gemm_split_task_count(GemmSplit::kAuto, 1, 512, 4), 4);
  EXPECT_EQ(gemm_split_task_count(GemmSplit::kAuto, 1, 1000, 8), 8);
}

TEST(WideGemm, SerialThresholdAuditPin) {
  // parallel_for's serial_threshold == 2 means an m==2 batch loop runs on
  // the calling thread — which is only correct because each sample's GEMM
  // can itself fan out. Pin the policy half of that argument: the m=2
  // wide-N GEMM the ConvOp/LinearOp batch loops hand us takes the column
  // split and schedules more than one task. If this pin breaks, a 2-sample
  // batch silently serializes end to end.
  EXPECT_EQ(gemm_choose_split(2, 1000, 4), GemmSplit::kCols);
  EXPECT_GT(gemm_split_task_count(GemmSplit::kAuto, 2, 1000, 4), 1);
  EXPECT_GT(gemm_split_task_count(GemmSplit::kAuto, 2, 512, 2), 1);
}

TEST(WideGemm, KeepsRowSplitWhereItAlreadyFillsThePool) {
  // Tall-M shapes: the classic MC row split already yields >= ways tasks.
  EXPECT_EQ(gemm_choose_split(256, 1000, 4), GemmSplit::kRows);
  EXPECT_EQ(gemm_split_task_count(GemmSplit::kAuto, 256, 1000, 4), 4);
  // One worker, or a single NR column panel: nothing to column-split.
  EXPECT_EQ(gemm_choose_split(2, 1000, 1), GemmSplit::kRows);
  EXPECT_EQ(gemm_choose_split(8, 8, 4), GemmSplit::kRows);
}

TEST(WideGemm, ChoosesGridWhenBothDimensionsAreMedium) {
  // 2 row tiles, 8 workers: rows alone leave 6 workers idle, columns alone
  // ignore the row tiles -> 2-D grid.
  EXPECT_EQ(gemm_choose_split(128, 2048, 8), GemmSplit::kGrid);
  EXPECT_EQ(gemm_split_task_count(GemmSplit::kAuto, 128, 2048, 8), 8);
}

TEST(WideGemm, StripesAreCappedAtNcColumns) {
  // A 2-way split of 4096 columns would make 2048-column stripes; the
  // driver caps stripes at kGemmNC and schedules more tasks instead, so
  // the per-task packed-B footprint never exceeds the serial path's.
  EXPECT_EQ(gemm_split_task_count(GemmSplit::kCols, 64, 4096, 2), 4);
}

// -------------------------------------------------- float bit-identity ---

void run_float_case(Trans trans_a, Trans trans_b, std::int64_t m,
                    std::int64_t n, std::int64_t k, float alpha, float beta) {
  Rng rng(9000 + static_cast<std::uint64_t>(m * 131 + n * 7 + k));
  const auto a = random_f32(m * k, rng);
  const auto b = random_f32(k * n, rng);
  const auto c0 = random_f32(m * n, rng);
  const std::int64_t lda = trans_a == Trans::no ? k : m;
  const std::int64_t ldb = trans_b == Trans::no ? n : k;

  std::vector<float> expected = c0;
  gemm(trans_a, trans_b, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
       expected.data(), n);

  for (const GemmSplit split : kForcedSplits) {
    for (const int ways : kWays) {
      std::vector<float> actual = c0;
      gemm_parallel(trans_a, trans_b, m, n, k, alpha, a.data(), lda, b.data(),
                    ldb, beta, actual.data(), n, /*scratch=*/nullptr, split,
                    ways);
      ASSERT_EQ(std::memcmp(actual.data(), expected.data(),
                            actual.size() * sizeof(float)),
                0)
          << "m=" << m << " n=" << n << " k=" << k
          << " split=" << static_cast<int>(split) << " ways=" << ways
          << " beta=" << beta;
    }
  }
}

TEST(WideGemm, FloatColumnAndGridSplitsAreBitIdentical) {
  // k=300 crosses a KC boundary (two pc panels); n=1000 leaves a short
  // final NR panel and a short final stripe. 2*m*n*k clears the pooled
  // dispatch gate for every shape here, so the grid drivers really run.
  for (const std::int64_t m : {1, 2, 8}) {
    for (const std::int64_t n : {512, 1000}) {
      run_float_case(Trans::no, Trans::no, m, n, 300, 1.0f, 0.0f);
    }
  }
  // Transpose forms + alpha/beta blending on one wide shape each.
  run_float_case(Trans::no, Trans::yes, 2, 1000, 300, 1.25f, 0.5f);
  run_float_case(Trans::yes, Trans::no, 8, 512, 300, -0.75f, 1.0f);
  run_float_case(Trans::no, Trans::no, 1, 1000, 513, 1.0f, 0.5f);
}

TEST(WideGemm, FloatGridSplitCoversMultipleRowTiles) {
  // Two MC row tiles x column stripes: the true 2-D grid (row groups > 1).
  run_float_case(Trans::no, Trans::no, 80, 1000, 300, 1.0f, 0.0f);
  run_float_case(Trans::yes, Trans::no, 80, 512, 300, 1.5f, 0.25f);
  run_float_case(Trans::no, Trans::no, 130, 2048, 64, 1.0f, 0.0f);
}

// ------------------------------------------------ integer bit-identity ---

struct IntCase {
  std::int64_t m, n, k;
};

const IntCase kIntCases[] = {{1, 512, 300}, {2, 1000, 300}, {8, 1000, 300},
                             {80, 1000, 256}};

TEST(WideGemm, S8U8ColumnAndGridSplitsMatchReference) {
  Rng rng(9100);
  for (const IntCase& tc : kIntCases) {
    for (const Trans trans_b : {Trans::no, Trans::yes}) {
      const auto a = random_s8(tc.m * tc.k, rng, 127);
      const auto b = random_u8(tc.k * tc.n, rng);
      const std::int64_t ldb = trans_b == Trans::no ? tc.n : tc.k;
      std::vector<std::int32_t> expected(
          static_cast<std::size_t>(tc.m * tc.n));
      reference_s8u8(trans_b, tc.m, tc.n, tc.k, 1, a.data(), b.data(), ldb,
                     false, expected);
      std::vector<std::int32_t> serial(expected.size(), -1);
      gemm_s8u8(trans_b, tc.m, tc.n, tc.k, 1, a.data(), tc.k, b.data(), ldb,
                false, serial.data(), tc.n);
      ASSERT_EQ(serial, expected);
      for (const GemmSplit split : kForcedSplits) {
        for (const int ways : kWays) {
          std::vector<std::int32_t> actual(expected.size(), -1);
          gemm_s8u8_parallel(trans_b, tc.m, tc.n, tc.k, 1, a.data(), tc.k,
                             b.data(), ldb, false, actual.data(), tc.n,
                             /*scratch=*/nullptr, split, ways);
          ASSERT_EQ(actual, expected)
              << "m=" << tc.m << " n=" << tc.n
              << " split=" << static_cast<int>(split) << " ways=" << ways;
        }
      }
    }
  }
}

TEST(WideGemm, S8U8PrepackedSplitsMatchSerial) {
  Rng rng(9200);
  for (const IntCase& tc : kIntCases) {
    const auto a = random_s8(tc.m * tc.k, rng, 127);
    const auto b = random_u8(tc.k * tc.n, rng);
    std::vector<std::int16_t> packed(
        static_cast<std::size_t>(gemm_s8u8_packed_a_size(tc.m, tc.k)));
    gemm_s8u8_pack_a(tc.m, tc.k, a.data(), tc.k, packed.data());
    // accumulate=true also exercises the add-into-C handoff at pc == 0.
    for (const bool accumulate : {false, true}) {
      std::vector<std::int32_t> expected(
          static_cast<std::size_t>(tc.m * tc.n), 3);
      gemm_s8u8_prepacked(Trans::no, tc.m, tc.n, tc.k, 1, packed.data(),
                          b.data(), tc.n, accumulate, expected.data(), tc.n);
      for (const GemmSplit split : kForcedSplits) {
        for (const int ways : kWays) {
          std::vector<std::int32_t> actual(
              static_cast<std::size_t>(tc.m * tc.n), 3);
          gemm_s8u8_prepacked_parallel(Trans::no, tc.m, tc.n, tc.k, 1,
                                       packed.data(), b.data(), tc.n,
                                       accumulate, actual.data(), tc.n,
                                       /*scratch=*/nullptr, split, ways);
          ASSERT_EQ(actual, expected)
              << "m=" << tc.m << " n=" << tc.n << " accumulate=" << accumulate
              << " split=" << static_cast<int>(split) << " ways=" << ways;
        }
      }
    }
  }
}

TEST(WideGemm, LowBitSplitsMatchReferenceAcrossAlphaChain) {
  Rng rng(9300);
  for (const IntCase& tc : kIntCases) {
    const auto a = random_s8(tc.m * tc.k, rng, 64);  // kernel bound |a|<=64
    const auto b = random_u8(tc.k * tc.n, rng);
    std::vector<std::int8_t> packed(static_cast<std::size_t>(
        gemm_s8u8_lowbit_packed_a_size(tc.m, tc.k)));
    gemm_s8u8_lowbit_pack_a(tc.m, tc.k, a.data(), tc.k, packed.data());
    // The split-plane chain: alpha=2 overwrite, then alpha=1 accumulate —
    // the exact call sequence PackedIntWeights issues for hi/lo layers.
    std::vector<std::int32_t> expected(static_cast<std::size_t>(tc.m * tc.n));
    reference_s8u8(Trans::no, tc.m, tc.n, tc.k, 2, a.data(), b.data(), tc.n,
                   false, expected);
    reference_s8u8(Trans::no, tc.m, tc.n, tc.k, 1, a.data(), b.data(), tc.n,
                   true, expected);
    for (const GemmSplit split : kForcedSplits) {
      for (const int ways : kWays) {
        std::vector<std::int32_t> actual(expected.size(), -1);
        gemm_s8u8_lowbit_prepacked_parallel(
            Trans::no, tc.m, tc.n, tc.k, 2, packed.data(), b.data(), tc.n,
            false, actual.data(), tc.n, /*scratch=*/nullptr, split, ways);
        gemm_s8u8_lowbit_prepacked_parallel(
            Trans::no, tc.m, tc.n, tc.k, 1, packed.data(), b.data(), tc.n,
            true, actual.data(), tc.n, /*scratch=*/nullptr, split, ways);
        ASSERT_EQ(actual, expected)
            << "m=" << tc.m << " n=" << tc.n
            << " split=" << static_cast<int>(split) << " ways=" << ways;
      }
    }
  }
}

TEST(WideGemm, LowBitWideSplitsMatchReference) {
  // int16 accumulation: only exact for codes the eligibility bound admits
  // at this depth — binary +/-1 layers qualify at every tested k.
  Rng rng(9400);
  for (const IntCase& tc : kIntCases) {
    ASSERT_TRUE(gemm_s8u8_wide_eligible(tc.k, 1));
    const auto a = random_s8(tc.m * tc.k, rng, 1);
    const auto b = random_u8(tc.k * tc.n, rng);
    std::vector<std::int8_t> packed(static_cast<std::size_t>(
        gemm_s8u8_lowbit_packed_a_size(tc.m, tc.k)));
    gemm_s8u8_lowbit_pack_a(tc.m, tc.k, a.data(), tc.k, packed.data());
    std::vector<std::int32_t> expected(static_cast<std::size_t>(tc.m * tc.n));
    reference_s8u8(Trans::no, tc.m, tc.n, tc.k, 1, a.data(), b.data(), tc.n,
                   false, expected);
    for (const GemmSplit split : kForcedSplits) {
      for (const int ways : kWays) {
        std::vector<std::int32_t> actual(expected.size(), -1);
        gemm_s8u8_lowbit_wide_prepacked_parallel(
            Trans::no, tc.m, tc.n, tc.k, 1, packed.data(), b.data(), tc.n,
            false, actual.data(), tc.n, /*scratch=*/nullptr, split, ways);
        ASSERT_EQ(actual, expected)
            << "m=" << tc.m << " n=" << tc.n
            << " split=" << static_cast<int>(split) << " ways=" << ways;
      }
    }
  }
}

TEST(WideGemm, NibbleSplitsMatchReference) {
  Rng rng(9500);
  for (const IntCase& tc : kIntCases) {
    const auto a = random_s8(tc.m * tc.k, rng, 7);  // signed nibble range
    const auto b = random_u8(tc.k * tc.n, rng);
    std::vector<std::uint8_t> packed(static_cast<std::size_t>(
        gemm_s8u8_nibble_packed_a_size(tc.m, tc.k)));
    gemm_s8u8_nibble_pack_a(tc.m, tc.k, a.data(), tc.k, packed.data());
    std::vector<std::int32_t> expected(static_cast<std::size_t>(tc.m * tc.n));
    reference_s8u8(Trans::no, tc.m, tc.n, tc.k, 1, a.data(), b.data(), tc.n,
                   false, expected);
    for (const GemmSplit split : kForcedSplits) {
      for (const int ways : kWays) {
        std::vector<std::int32_t> actual(expected.size(), -1);
        gemm_s8u8_nibble_prepacked_parallel(
            Trans::no, tc.m, tc.n, tc.k, 1, packed.data(), b.data(), tc.n,
            false, actual.data(), tc.n, /*scratch=*/nullptr, split, ways);
        ASSERT_EQ(actual, expected)
            << "m=" << tc.m << " n=" << tc.n
            << " split=" << static_cast<int>(split) << " ways=" << ways;
      }
    }
  }
}

TEST(WideGemm, PackedWeightsWideNDispatchIsBitIdentical) {
  // The serving entry point: a split (hi/lo alpha-chained) s8u8 layer at a
  // wide-N activation shape. kAuto must resolve to the column split and
  // stay bit-identical to the serial path.
  Rng rng(9600);
  const std::int64_t rows = 8, cols = 300, n = 1000;
  std::vector<std::int32_t> codes(static_cast<std::size_t>(rows * cols));
  for (auto& code : codes) {
    code = static_cast<std::int32_t>(rng.uniform(-255.0f, 255.0f));
  }
  codes[0] = 255;  // odd max |code| > 127: shift=0, hi/lo split forced
  const PackedIntWeights weights(codes, /*step=*/0.5f, /*bits=*/8, rows, cols,
                                 WeightKernel::kS8U8);
  ASSERT_TRUE(weights.split());
  const auto b = random_u8(cols * n, rng);

  std::vector<std::int32_t> serial(static_cast<std::size_t>(rows * n), -1);
  weights.gemm(Trans::no, n, b.data(), n, serial.data(), n, /*pooled=*/false);
  for (const GemmSplit split : kForcedSplits) {
    std::vector<std::int32_t> pooled(serial.size(), -1);
    weights.gemm(Trans::no, n, b.data(), n, pooled.data(), n, /*pooled=*/true,
                 /*scratch=*/nullptr, split);
    ASSERT_EQ(pooled, serial) << "split=" << static_cast<int>(split);
  }
}

}  // namespace
}  // namespace csq
