// Tests for src/data (synthetic generator, loader) and src/opt (SGD,
// schedules, training loops).
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/dataloader.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "opt/lr_schedule.h"
#include "opt/sgd.h"
#include "opt/trainer.h"
#include "tensor/ops.h"
#include "test_helpers.h"
#include "util/check.h"

namespace csq {
namespace {

SyntheticConfig tiny_config() {
  SyntheticConfig config;
  config.num_classes = 4;
  config.train_samples = 64;
  config.test_samples = 32;
  config.height = 8;
  config.width = 8;
  config.noise_stddev = 0.3f;
  config.seed = 5;
  return config;
}

TEST(Synthetic, DeterministicForSameSeed) {
  const SyntheticDataset a = make_synthetic(tiny_config());
  const SyntheticDataset b = make_synthetic(tiny_config());
  EXPECT_LT(max_abs_diff(a.train.images(), b.train.images()), 0.0f + 1e-9f);
  EXPECT_EQ(a.train.labels(), b.train.labels());
}

TEST(Synthetic, DifferentSeedsProduceDifferentData) {
  SyntheticConfig config = tiny_config();
  const SyntheticDataset a = make_synthetic(config);
  config.seed = 6;
  const SyntheticDataset b = make_synthetic(config);
  EXPECT_GT(max_abs_diff(a.train.images(), b.train.images()), 0.1f);
}

TEST(Synthetic, LabelsBalancedAcrossClasses) {
  const SyntheticDataset data = make_synthetic(tiny_config());
  std::vector<int> counts(4, 0);
  for (const int label : data.train.labels()) ++counts[label];
  for (const int count : counts) EXPECT_EQ(count, 16);
}

TEST(Synthetic, TrainAndTestDrawDifferentSamples) {
  const SyntheticDataset data = make_synthetic(tiny_config());
  // Same templates, different augmentation draws: first train and test
  // samples of class 0 must differ.
  float diff = 0.0f;
  const float* train = data.train.images().data();
  const float* test = data.test.images().data();
  for (std::int64_t i = 0; i < 3 * 8 * 8; ++i) {
    diff = std::max(diff, std::abs(train[i] - test[i]));
  }
  EXPECT_GT(diff, 0.05f);
}

TEST(Synthetic, ClassesAreDistinguishable) {
  // Class templates must differ far more than augmentation noise within a
  // class — otherwise the datasets would be unlearnable.
  SyntheticConfig config = tiny_config();
  config.noise_stddev = 0.1f;
  const SyntheticDataset data = make_synthetic(config);
  const std::int64_t sample = 3 * 8 * 8;
  const float* images = data.train.images().data();
  // samples 0 and 4 share class 0; samples 0 and 1 are classes 0 and 1.
  double same_class = 0.0, cross_class = 0.0;
  for (std::int64_t i = 0; i < sample; ++i) {
    same_class += std::pow(images[i] - images[4 * sample + i], 2.0);
    cross_class += std::pow(images[i] - images[1 * sample + i], 2.0);
  }
  EXPECT_GT(cross_class, same_class);
}

TEST(Synthetic, PresetsValidate) {
  EXPECT_GT(SyntheticConfig::cifar_like().num_classes, 1);
  EXPECT_GT(SyntheticConfig::imagenet_like().num_classes,
            SyntheticConfig::cifar_like().num_classes);
}

TEST(Dataset, GatherCopiesRequestedSamples) {
  const SyntheticDataset data = make_synthetic(tiny_config());
  const Batch batch = data.train.gather({3, 0, 7});
  EXPECT_EQ(batch.images.dim(0), 3);
  EXPECT_EQ(batch.labels.size(), 3u);
  EXPECT_EQ(batch.labels[0], data.train.labels()[3]);
  EXPECT_THROW(data.train.gather({-1}), check_error);
  EXPECT_THROW(data.train.gather({1000}), check_error);
}

TEST(DataLoader, EpochCoversEverySampleExactlyOnce) {
  const SyntheticDataset data = make_synthetic(tiny_config());
  DataLoader loader(data.train, 10, /*shuffle=*/true, Rng(3));
  EXPECT_EQ(loader.batches_per_epoch(), 7);  // ceil(64/10)

  std::multiset<int> label_multiset;
  Batch batch;
  int batches = 0;
  std::int64_t samples = 0;
  while (loader.next(batch)) {
    ++batches;
    samples += static_cast<std::int64_t>(batch.labels.size());
    for (const int label : batch.labels) label_multiset.insert(label);
  }
  EXPECT_EQ(batches, 7);
  EXPECT_EQ(samples, 64);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(label_multiset.count(c), 16u);
  }
}

TEST(DataLoader, ShuffleChangesOrderBetweenEpochs) {
  const SyntheticDataset data = make_synthetic(tiny_config());
  DataLoader loader(data.train, 64, /*shuffle=*/true, Rng(3));
  Batch first, second;
  loader.next(first);
  loader.start_epoch();
  loader.next(second);
  EXPECT_NE(first.labels, second.labels);
}

TEST(DataLoader, NoShufflePreservesOrder) {
  const SyntheticDataset data = make_synthetic(tiny_config());
  DataLoader loader(data.train, 64, /*shuffle=*/false, Rng(3));
  Batch batch;
  loader.next(batch);
  EXPECT_EQ(batch.labels, data.train.labels());
}

// ------------------------------------------------------------------ sgd --

TEST(Sgd, PlainStepMatchesClosedForm) {
  Parameter param("w", Tensor::from_data({2}, {1.0f, -2.0f}));
  param.grad = Tensor::from_data({2}, {0.5f, 1.0f});
  SgdConfig config;
  config.learning_rate = 0.1f;
  config.momentum = 0.0f;
  config.weight_decay = 0.0f;
  Sgd sgd({&param}, config);
  sgd.step();
  EXPECT_FLOAT_EQ(param.value[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(param.value[1], -2.0f - 0.1f * 1.0f);
}

TEST(Sgd, MomentumAccumulates) {
  Parameter param("w", Tensor::from_data({1}, {0.0f}));
  SgdConfig config;
  config.learning_rate = 1.0f;
  config.momentum = 0.5f;
  config.weight_decay = 0.0f;
  Sgd sgd({&param}, config);
  param.grad[0] = 1.0f;
  sgd.step();  // v=1, w=-1
  EXPECT_FLOAT_EQ(param.value[0], -1.0f);
  sgd.step();  // v=0.5*1+1=1.5, w=-2.5
  EXPECT_FLOAT_EQ(param.value[0], -2.5f);
  sgd.reset_momentum();
  sgd.step();  // v=1 again
  EXPECT_FLOAT_EQ(param.value[0], -3.5f);
}

TEST(Sgd, WeightDecayRespectsPerParameterFlag) {
  Parameter decayed("w", Tensor::from_data({1}, {2.0f}), true);
  Parameter exempt("g", Tensor::from_data({1}, {2.0f}), false);
  SgdConfig config;
  config.learning_rate = 0.1f;
  config.momentum = 0.0f;
  config.weight_decay = 0.5f;
  Sgd sgd({&decayed, &exempt}, config);
  sgd.step();  // grads are zero: only decay acts
  EXPECT_FLOAT_EQ(decayed.value[0], 2.0f - 0.1f * 0.5f * 2.0f);
  EXPECT_FLOAT_EQ(exempt.value[0], 2.0f);
}

// ------------------------------------------------------------- schedule --

TEST(CosineSchedule, EndpointsAndMonotoneDecay) {
  CosineSchedule schedule(0.1f, 100, /*warmup=*/0, /*lr_min=*/0.0f);
  EXPECT_FLOAT_EQ(schedule.at_epoch(0), 0.1f);
  EXPECT_NEAR(schedule.at_epoch(50), 0.05f, 1e-3f);
  EXPECT_LT(schedule.at_epoch(99), 0.001f);
  for (int e = 1; e < 100; ++e) {
    EXPECT_LE(schedule.at_epoch(e), schedule.at_epoch(e - 1) + 1e-7f);
  }
}

TEST(CosineSchedule, WarmupRampsLinearly) {
  CosineSchedule schedule(0.1f, 20, /*warmup=*/5);
  EXPECT_FLOAT_EQ(schedule.at_epoch(0), 0.02f);
  EXPECT_FLOAT_EQ(schedule.at_epoch(4), 0.1f);
  EXPECT_GT(schedule.at_epoch(5), schedule.at_epoch(19));
}

TEST(CosineSchedule, RejectsBadConfigs) {
  EXPECT_THROW(CosineSchedule(0.1f, 0), check_error);
  EXPECT_THROW(CosineSchedule(0.1f, 10, 10), check_error);
  EXPECT_THROW(CosineSchedule(-0.1f, 10), check_error);
}

// ---------------------------------------------------------------- fit --

TEST(Fit, LearnsTinySyntheticTask) {
  SyntheticConfig data_config = tiny_config();
  data_config.noise_stddev = 0.2f;
  const SyntheticDataset data = make_synthetic(data_config);

  Rng rng(8);
  ModelConfig model_config;
  model_config.num_classes = 4;
  model_config.base_width = 4;
  Model model = make_resnet20(model_config, dense_weight_factory(), nullptr,
                              rng);
  TrainConfig config;
  config.epochs = 8;
  config.batch_size = 16;
  config.learning_rate = 0.05f;
  const FitResult result = fit(model, data.train, data.test, config);
  EXPECT_GT(result.final_train_accuracy, 70.0f);
  EXPECT_GT(result.test_accuracy, 60.0f);
}

TEST(Fit, HooksFireInOrder) {
  const SyntheticDataset data = make_synthetic(tiny_config());
  Rng rng(9);
  ModelConfig model_config;
  model_config.num_classes = 4;
  model_config.base_width = 4;
  Model model = make_resnet20(model_config, dense_weight_factory(), nullptr,
                              rng);
  TrainConfig config;
  config.epochs = 2;
  config.batch_size = 32;

  int begins = 0, steps = 0, ends = 0;
  FitHooks hooks;
  hooks.on_epoch_begin = [&](int) { ++begins; };
  hooks.before_step = [&]() { ++steps; };
  hooks.on_epoch_end = [&](int, float, float) { ++ends; };
  fit(model, data.train, data.test, config, hooks);
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  EXPECT_EQ(steps, 2 * 2);  // 64 samples / 32 per batch * 2 epochs
}

TEST(EvaluateAccuracy, PerfectAndRandomBaselines) {
  const SyntheticDataset data = make_synthetic(tiny_config());
  Rng rng(10);
  ModelConfig model_config;
  model_config.num_classes = 4;
  model_config.base_width = 4;
  Model model = make_resnet20(model_config, dense_weight_factory(), nullptr,
                              rng);
  const float accuracy = evaluate_accuracy(model, data.test);
  EXPECT_GE(accuracy, 0.0f);
  EXPECT_LE(accuracy, 100.0f);
}

}  // namespace
}  // namespace csq
