// Tests for src/quant: uniform quantizer properties, STE / DoReFa /
// LQ-Nets / BSQ weight sources, activation quantizers, PTQ.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "nn/conv2d.h"
#include "quant/act_quant.h"
#include "quant/bsq_weight.h"
#include "quant/dorefa_weight.h"
#include "quant/lqnets_weight.h"
#include "quant/ptq.h"
#include "quant/quantizer.h"
#include "quant/ste_uniform_weight.h"
#include "nn/models.h"
#include "tensor/ops.h"
#include "test_helpers.h"
#include "util/check.h"

namespace csq {
namespace {

using testing::random_tensor;

// ----------------------------------------------------------- quantizer --

class QuantizerBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerBitsTest, ValuesLandOnTheGrid) {
  const int bits = GetParam();
  const float scale = 1.7f;
  const auto levels = static_cast<float>(levels_per_side(bits));
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const float value = rng.uniform(-3.0f, 3.0f);
    const float q = quantize_symmetric(value, scale, bits);
    // q * levels / scale must be an integer with |.| <= levels.
    const float grid_position = q * levels / scale;
    EXPECT_NEAR(grid_position, std::round(grid_position), 1e-3f);
    EXPECT_LE(std::fabs(grid_position), levels + 1e-3f);
  }
}

TEST_P(QuantizerBitsTest, QuantizationIsIdempotent) {
  const int bits = GetParam();
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const float value = rng.uniform(-2.0f, 2.0f);
    const float once = quantize_symmetric(value, 1.0f, bits);
    EXPECT_FLOAT_EQ(once, quantize_symmetric(once, 1.0f, bits));
  }
}

TEST_P(QuantizerBitsTest, ErrorBoundedByHalfStep) {
  const int bits = GetParam();
  const float scale = 1.0f;
  const float step = scale / static_cast<float>(levels_per_side(bits));
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const float value = rng.uniform(-1.0f, 1.0f);  // inside the clip range
    const float q = quantize_symmetric(value, scale, bits);
    EXPECT_LE(std::fabs(q - value), 0.5f * step + 1e-6f);
  }
}

TEST_P(QuantizerBitsTest, CodesRoundTrip) {
  const int bits = GetParam();
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const float value = rng.uniform(-2.0f, 2.0f);
    const std::int64_t code = symmetric_code(value, 1.5f, bits);
    EXPECT_LE(std::llabs(code), levels_per_side(bits));
    EXPECT_FLOAT_EQ(dequantize_code(code, 1.5f, bits),
                    quantize_symmetric(value, 1.5f, bits));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, QuantizerBitsTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Quantizer, ClampsOutOfRangeValues) {
  EXPECT_FLOAT_EQ(quantize_symmetric(10.0f, 1.0f, 3), 1.0f);
  EXPECT_FLOAT_EQ(quantize_symmetric(-10.0f, 1.0f, 3), -1.0f);
}

TEST(Quantizer, UnsignedGridAndClip) {
  EXPECT_FLOAT_EQ(quantize_unsigned(-1.0f, 2.0f, 4), 0.0f);
  EXPECT_FLOAT_EQ(quantize_unsigned(5.0f, 2.0f, 4), 2.0f);
  const float q = quantize_unsigned(1.0f, 2.0f, 2);
  EXPECT_NEAR(q * 3.0f / 2.0f, std::round(q * 3.0f / 2.0f), 1e-5f);
}

TEST(Quantizer, MaxAbsScaleHandlesZeros) {
  EXPECT_FLOAT_EQ(max_abs_scale(Tensor({4})), 1.0f);
  EXPECT_FLOAT_EQ(max_abs_scale(Tensor::from_data({2}, {-3.0f, 2.0f})), 3.0f);
}

TEST(Quantizer, PercentileScaleClipsOutliers) {
  std::vector<float> values(1000, 0.1f);
  values[0] = 100.0f;  // one huge outlier
  Tensor tensor = Tensor::from_data({1000}, std::move(values));
  EXPECT_FLOAT_EQ(percentile_scale(tensor, 0.99f), 0.1f);
  EXPECT_FLOAT_EQ(max_abs_scale(tensor), 100.0f);
}

// --------------------------------------------------------- ste uniform --

TEST(SteUniform, WeightsAreOnGridAndGradPassesThrough) {
  Rng rng(7);
  SteUniformWeightSource source("w", {4, 4}, 4, /*bits=*/3, rng);
  const Tensor& quantized = source.weight(true);
  const float scale = max_abs_scale(quantized);
  for (std::int64_t i = 0; i < quantized.numel(); ++i) {
    const float grid = quantized[i] / scale * 7.0f;
    EXPECT_NEAR(grid, std::round(grid), 1e-3f);
  }

  Tensor grad = Tensor::full({4, 4}, 0.5f);
  source.backward(grad);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  ASSERT_EQ(params.size(), 1u);
  EXPECT_FLOAT_EQ(params[0]->grad[0], 0.5f);  // pure pass-through
  EXPECT_DOUBLE_EQ(source.bits_per_weight(), 3.0);
}

TEST(SteUniform, MixedFactoryUsesPerLayerBits) {
  Rng rng(8);
  auto factory = ste_mixed_weight_factory({{"a", 2}, {"b", 6}}, 4);
  auto a = factory("a", {2, 2}, 2, rng);
  auto b = factory("b", {2, 2}, 2, rng);
  auto other = factory("unknown", {2, 2}, 2, rng);
  EXPECT_DOUBLE_EQ(a->bits_per_weight(), 2.0);
  EXPECT_DOUBLE_EQ(b->bits_per_weight(), 6.0);
  EXPECT_DOUBLE_EQ(other->bits_per_weight(), 4.0);
}

// -------------------------------------------------------------- dorefa --

TEST(Dorefa, WeightsBoundedAndOnGrid) {
  Rng rng(9);
  DorefaWeightSource source("w", {8, 8}, 8, /*bits=*/2, rng);
  const Tensor& quantized = source.weight(true);
  const auto levels = 3.0f;  // 2^2 - 1
  for (std::int64_t i = 0; i < quantized.numel(); ++i) {
    EXPECT_LE(std::fabs(quantized[i]), 1.0f + 1e-5f);
    const float grid = (quantized[i] + 1.0f) / 2.0f * levels;
    EXPECT_NEAR(grid, std::round(grid), 1e-3f);
  }
}

TEST(Dorefa, GradientScalesWithTanhDerivative) {
  Rng rng(10);
  DorefaWeightSource source("w", {1, 2}, 2, /*bits=*/2, rng);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  // Put one latent near zero (tanh' ~ 1) and one far out (tanh' ~ 0).
  params[0]->value[0] = 0.0f;
  params[0]->value[1] = 5.0f;
  source.weight(true);
  source.backward(Tensor::full({1, 2}, 1.0f));
  EXPECT_GT(std::fabs(params[0]->grad[0]), 10.0f * std::fabs(params[0]->grad[1]));
}

// -------------------------------------------------------------- lqnets --

TEST(LqNets, EncodingUsesAtMostTwoToTheNLevels) {
  Rng rng(11);
  LqNetsWeightSource source("w", {16, 16}, 16, /*bits=*/2, rng);
  const Tensor& quantized = source.weight(true);
  std::set<float> distinct;
  for (std::int64_t i = 0; i < quantized.numel(); ++i) {
    distinct.insert(quantized[i]);
  }
  EXPECT_LE(distinct.size(), 4u);
  EXPECT_EQ(source.basis().size(), 2u);
}

TEST(LqNets, QemReducesFitError) {
  Rng rng(12);
  LqNetsWeightSource source("w", {32, 32}, 32, /*bits=*/3, rng);
  source.weight(true);
  const float first = source.last_fit_error();
  for (int i = 0; i < 5; ++i) source.weight(true);
  EXPECT_LE(source.last_fit_error(), first * 1.01f);
}

TEST(LqNets, RejectsTooManyBits) {
  Rng rng(13);
  EXPECT_THROW(LqNetsWeightSource("w", {2, 2}, 2, 5, rng), check_error);
}

// ----------------------------------------------------------------- bsq --

TEST(Bsq, InitialReconstructionApproximatesDenseInit) {
  Rng rng(14);
  BsqWeightSource source("w", {8, 8}, 8, rng);
  EXPECT_EQ(source.active_bits(), 8);
  const Tensor& w = source.weight(true);
  // 8-bit decomposition: error <= s/255 half-step.
  const float scale = max_abs_scale(w);
  EXPECT_GT(scale, 0.0f);
}

TEST(Bsq, WeightsLandOnEightBitGrid) {
  Rng rng(15);
  BsqWeightSource source("w", {6, 6}, 6, rng);
  const Tensor& w = source.weight(true);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  const float s = params[0]->value[0];  // scale is first
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    const float grid = w[i] / s * 255.0f;
    EXPECT_NEAR(grid, std::round(grid), 1e-2f);
  }
}

TEST(Bsq, PruneRemovesUnusedBitsAndRequantizes) {
  Rng rng(16);
  BsqWeightSource source("w", {10, 10}, 10, rng);
  Tensor before = source.weight(true);
  // Aggressive threshold: every bit with < 60% usage dies.
  const int removed = source.prune_bits(0.6f);
  EXPECT_GT(removed, 0);
  EXPECT_EQ(source.active_bits(), 8 - removed);
  EXPECT_GE(source.active_bits(), 1);
  EXPECT_DOUBLE_EQ(source.bits_per_weight(), source.active_bits());
  // Re-quantized weights still approximate the pre-prune weights.
  Tensor after = source.weight(true);
  EXPECT_LT(max_abs_diff(before, after), max_abs_scale(before) * 0.6f);
}

TEST(Bsq, SparsityRegularizerPushesActiveLatentsOnly) {
  Rng rng(17);
  BsqWeightSource source("w", {4, 4}, 4, rng);
  source.add_sparsity_regularizer(0.1f);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  // Latents sit at 0.25/0.75 > 0, so every plane entry receives +0.1.
  bool any_pushed = false;
  for (std::size_t p = 1; p < params.size(); ++p) {
    for (std::int64_t i = 0; i < params[p]->grad.numel(); ++i) {
      if (params[p]->grad[i] != 0.0f) {
        EXPECT_FLOAT_EQ(params[p]->grad[i], 0.1f);
        any_pushed = true;
      }
    }
  }
  EXPECT_TRUE(any_pushed);
}

TEST(Bsq, SteBackwardRoutesGradientToActivePlanes) {
  Rng rng(18);
  BsqWeightSource source("w", {2, 2}, 2, rng);
  source.weight(true);
  source.backward(Tensor::full({2, 2}, 1.0f));
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  float total = 0.0f;
  for (Parameter* param : params) {
    for (std::int64_t i = 0; i < param->grad.numel(); ++i) {
      total += std::fabs(param->grad[i]);
    }
  }
  EXPECT_GT(total, 0.0f);
}

// ----------------------------------------------------------- act quant --

TEST(FixedActQuant, QuantizesToGridAndTracksRange) {
  FixedActQuant quant("aq", 2);
  Tensor input = Tensor::from_data({1, 4}, {0.0f, 1.0f, 2.0f, 4.0f});
  Tensor out = quant.forward(input, /*training=*/true);
  const float range = quant.range();
  EXPECT_NEAR(range, 4.0f, 1e-4f);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const float grid = out[i] / range * 3.0f;
    EXPECT_NEAR(grid, std::round(grid), 1e-3f);
  }
}

TEST(FixedActQuant, BackwardMasksOutOfRange) {
  FixedActQuant quant("aq", 4);
  Tensor warmup = Tensor::from_data({1, 2}, {1.0f, 1.0f});
  quant.forward(warmup, true);  // range ~1
  Tensor input = Tensor::from_data({1, 2}, {0.5f, 50.0f});
  quant.forward(input, true);
  Tensor grad = quant.backward(Tensor::full({1, 2}, 1.0f));
  EXPECT_FLOAT_EQ(grad[0], 1.0f);
  EXPECT_FLOAT_EQ(grad[1], 0.0f);  // above the clip: STE masks it
}

TEST(FixedActQuant, ObserveModePassesThrough) {
  FixedActQuant quant("aq", 2);
  quant.set_quantize_enabled(false);
  Tensor input = Tensor::from_data({1, 3}, {0.123f, 0.456f, 0.789f});
  Tensor out = quant.forward(input, true);
  EXPECT_LT(max_abs_diff(out, input), 1e-7f);
  EXPECT_GT(quant.range(), 0.0f);  // statistics still update
}

TEST(PactActQuant, ClipGradientFlowsToAlpha) {
  PactActQuant quant("pact", 4, /*alpha_init=*/1.0f);
  Tensor input = Tensor::from_data({1, 3}, {0.5f, 2.0f, 3.0f});
  quant.forward(input, true);
  Tensor grad = quant.backward(Tensor::full({1, 3}, 1.0f));
  EXPECT_FLOAT_EQ(grad[0], 1.0f);  // in range: STE
  EXPECT_FLOAT_EQ(grad[1], 0.0f);  // clipped
  std::vector<Parameter*> params;
  quant.collect_parameters(params);
  EXPECT_FLOAT_EQ(params[0]->grad[0], 2.0f);  // two clipped entries
}

TEST(PactActQuant, OutputBoundedByAlpha) {
  PactActQuant quant("pact", 3, 0.7f);
  Rng rng(19);
  Tensor input = random_tensor({2, 8}, rng, -1.0f, 5.0f);
  Tensor out = quant.forward(input, false);
  EXPECT_LE(max_value(out), 0.7f + 1e-5f);
  EXPECT_GE(min_value(out), 0.0f);
}

TEST(ActQuantFactories, RegistryRecordsInstances) {
  std::vector<FixedActQuant*> registry;
  auto factory = fixed_act_quant_factory(4, &registry);
  ModulePtr a = factory("aq1");
  ModulePtr b = factory("aq2");
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry[0]->bits(), 4);
}

// ----------------------------------------------------------------- ptq --

TEST(Ptq, QuantizesAllDenseLayersInPlace) {
  Rng rng(20);
  ModelConfig config;
  config.base_width = 4;
  Model model = make_resnet20(config, dense_weight_factory(), nullptr, rng);
  const PtqReport report =
      quantize_dense_weights(model, 4, PtqCalibration::max_abs);
  EXPECT_EQ(report.layers_quantized,
            static_cast<int>(model.quant_layers().size()));
  EXPECT_GT(report.mean_relative_error, 0.0);
  EXPECT_LT(report.mean_relative_error, 0.2);

  // Every dense weight now sits on its layer's 4-bit grid.
  for (const QuantLayer& layer : model.quant_layers()) {
    auto* dense = dynamic_cast<DenseWeightSource*>(layer.source);
    ASSERT_NE(dense, nullptr);
    const Tensor& w = dense->parameter().value;
    const float scale = max_abs_scale(w);
    for (std::int64_t i = 0; i < std::min<std::int64_t>(w.numel(), 50); ++i) {
      const float grid = w[i] / scale * 15.0f;
      EXPECT_NEAR(grid, std::round(grid), 1e-2f);
    }
  }
}

TEST(Ptq, LowerBitsGiveLargerError) {
  Rng rng(21);
  ModelConfig config;
  config.base_width = 4;
  Model model_a = make_resnet20(config, dense_weight_factory(), nullptr, rng);
  Rng rng2(21);
  Model model_b = make_resnet20(config, dense_weight_factory(), nullptr, rng2);
  const PtqReport high =
      quantize_dense_weights(model_a, 8, PtqCalibration::max_abs);
  const PtqReport low =
      quantize_dense_weights(model_b, 2, PtqCalibration::max_abs);
  EXPECT_GT(low.mean_relative_error, high.mean_relative_error * 4);
}

}  // namespace
}  // namespace csq
