// Tests for src/quant: uniform quantizer properties, STE / DoReFa /
// LQ-Nets / BSQ weight sources, activation quantizers, PTQ, and the shared
// bit-plane engine / quant-kernel pipeline every family materializes
// through (cross-family gradient checks, serial-vs-pooled parity).
#include <cmath>
#include <cstring>
#include <functional>
#include <set>

#include <gtest/gtest.h>

#include "core/csq_weight.h"
#include "nn/conv2d.h"
#include "quant/act_quant.h"
#include "quant/bsq_weight.h"
#include "quant/dorefa_weight.h"
#include "quant/lqnets_weight.h"
#include "quant/ptq.h"
#include "quant/quantizer.h"
#include "quant/ste_uniform_weight.h"
#include "nn/models.h"
#include "tensor/ops.h"
#include "tensor/quant_kernels.h"
#include "test_helpers.h"
#include "util/check.h"

namespace csq {
namespace {

using testing::random_tensor;

// ----------------------------------------------------------- quantizer --

class QuantizerBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerBitsTest, ValuesLandOnTheGrid) {
  const int bits = GetParam();
  const float scale = 1.7f;
  const auto levels = static_cast<float>(levels_per_side(bits));
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const float value = rng.uniform(-3.0f, 3.0f);
    const float q = quantize_symmetric(value, scale, bits);
    // q * levels / scale must be an integer with |.| <= levels.
    const float grid_position = q * levels / scale;
    EXPECT_NEAR(grid_position, std::round(grid_position), 1e-3f);
    EXPECT_LE(std::fabs(grid_position), levels + 1e-3f);
  }
}

TEST_P(QuantizerBitsTest, QuantizationIsIdempotent) {
  const int bits = GetParam();
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const float value = rng.uniform(-2.0f, 2.0f);
    const float once = quantize_symmetric(value, 1.0f, bits);
    EXPECT_FLOAT_EQ(once, quantize_symmetric(once, 1.0f, bits));
  }
}

TEST_P(QuantizerBitsTest, ErrorBoundedByHalfStep) {
  const int bits = GetParam();
  const float scale = 1.0f;
  const float step = scale / static_cast<float>(levels_per_side(bits));
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const float value = rng.uniform(-1.0f, 1.0f);  // inside the clip range
    const float q = quantize_symmetric(value, scale, bits);
    EXPECT_LE(std::fabs(q - value), 0.5f * step + 1e-6f);
  }
}

TEST_P(QuantizerBitsTest, CodesRoundTrip) {
  const int bits = GetParam();
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const float value = rng.uniform(-2.0f, 2.0f);
    const std::int64_t code = symmetric_code(value, 1.5f, bits);
    EXPECT_LE(std::llabs(code), levels_per_side(bits));
    EXPECT_FLOAT_EQ(dequantize_code(code, 1.5f, bits),
                    quantize_symmetric(value, 1.5f, bits));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, QuantizerBitsTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Quantizer, ClampsOutOfRangeValues) {
  EXPECT_FLOAT_EQ(quantize_symmetric(10.0f, 1.0f, 3), 1.0f);
  EXPECT_FLOAT_EQ(quantize_symmetric(-10.0f, 1.0f, 3), -1.0f);
}

TEST(Quantizer, UnsignedGridAndClip) {
  EXPECT_FLOAT_EQ(quantize_unsigned(-1.0f, 2.0f, 4), 0.0f);
  EXPECT_FLOAT_EQ(quantize_unsigned(5.0f, 2.0f, 4), 2.0f);
  const float q = quantize_unsigned(1.0f, 2.0f, 2);
  EXPECT_NEAR(q * 3.0f / 2.0f, std::round(q * 3.0f / 2.0f), 1e-5f);
}

TEST(Quantizer, MaxAbsScaleHandlesZeros) {
  EXPECT_FLOAT_EQ(max_abs_scale(Tensor({4})), 1.0f);
  EXPECT_FLOAT_EQ(max_abs_scale(Tensor::from_data({2}, {-3.0f, 2.0f})), 3.0f);
}

TEST(Quantizer, PercentileScaleClipsOutliers) {
  std::vector<float> values(1000, 0.1f);
  values[0] = 100.0f;  // one huge outlier
  Tensor tensor = Tensor::from_data({1000}, std::move(values));
  EXPECT_FLOAT_EQ(percentile_scale(tensor, 0.99f), 0.1f);
  EXPECT_FLOAT_EQ(max_abs_scale(tensor), 100.0f);
}

// --------------------------------------------------------- ste uniform --

TEST(SteUniform, WeightsAreOnGridAndGradPassesThrough) {
  Rng rng(7);
  SteUniformWeightSource source("w", {4, 4}, 4, /*bits=*/3, rng);
  const Tensor& quantized = source.weight(true);
  const float scale = max_abs_scale(quantized);
  for (std::int64_t i = 0; i < quantized.numel(); ++i) {
    const float grid = quantized[i] / scale * 7.0f;
    EXPECT_NEAR(grid, std::round(grid), 1e-3f);
  }

  Tensor grad = Tensor::full({4, 4}, 0.5f);
  source.backward(grad);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  ASSERT_EQ(params.size(), 1u);
  EXPECT_FLOAT_EQ(params[0]->grad[0], 0.5f);  // pure pass-through
  EXPECT_DOUBLE_EQ(source.bits_per_weight(), 3.0);
}

TEST(SteUniform, MixedFactoryUsesPerLayerBits) {
  Rng rng(8);
  auto factory = ste_mixed_weight_factory({{"a", 2}, {"b", 6}}, 4);
  auto a = factory("a", {2, 2}, 2, rng);
  auto b = factory("b", {2, 2}, 2, rng);
  auto other = factory("unknown", {2, 2}, 2, rng);
  EXPECT_DOUBLE_EQ(a->bits_per_weight(), 2.0);
  EXPECT_DOUBLE_EQ(b->bits_per_weight(), 6.0);
  EXPECT_DOUBLE_EQ(other->bits_per_weight(), 4.0);
}

// -------------------------------------------------------------- dorefa --

TEST(Dorefa, WeightsBoundedAndOnGrid) {
  Rng rng(9);
  DorefaWeightSource source("w", {8, 8}, 8, /*bits=*/2, rng);
  const Tensor& quantized = source.weight(true);
  const auto levels = 3.0f;  // 2^2 - 1
  for (std::int64_t i = 0; i < quantized.numel(); ++i) {
    EXPECT_LE(std::fabs(quantized[i]), 1.0f + 1e-5f);
    const float grid = (quantized[i] + 1.0f) / 2.0f * levels;
    EXPECT_NEAR(grid, std::round(grid), 1e-3f);
  }
}

TEST(Dorefa, GradientScalesWithTanhDerivative) {
  Rng rng(10);
  DorefaWeightSource source("w", {1, 2}, 2, /*bits=*/2, rng);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  // Put one latent near zero (tanh' ~ 1) and one far out (tanh' ~ 0).
  params[0]->value[0] = 0.0f;
  params[0]->value[1] = 5.0f;
  source.weight(true);
  source.backward(Tensor::full({1, 2}, 1.0f));
  EXPECT_GT(std::fabs(params[0]->grad[0]), 10.0f * std::fabs(params[0]->grad[1]));
}

// -------------------------------------------------------------- lqnets --

TEST(LqNets, EncodingUsesAtMostTwoToTheNLevels) {
  Rng rng(11);
  LqNetsWeightSource source("w", {16, 16}, 16, /*bits=*/2, rng);
  const Tensor& quantized = source.weight(true);
  std::set<float> distinct;
  for (std::int64_t i = 0; i < quantized.numel(); ++i) {
    distinct.insert(quantized[i]);
  }
  EXPECT_LE(distinct.size(), 4u);
  EXPECT_EQ(source.basis().size(), 2u);
}

TEST(LqNets, QemReducesFitError) {
  Rng rng(12);
  LqNetsWeightSource source("w", {32, 32}, 32, /*bits=*/3, rng);
  source.weight(true);
  const float first = source.last_fit_error();
  for (int i = 0; i < 5; ++i) source.weight(true);
  EXPECT_LE(source.last_fit_error(), first * 1.01f);
}

TEST(LqNets, RejectsTooManyBits) {
  Rng rng(13);
  EXPECT_THROW(LqNetsWeightSource("w", {2, 2}, 2, 5, rng), check_error);
}

// ----------------------------------------------------------------- bsq --

TEST(Bsq, InitialReconstructionApproximatesDenseInit) {
  Rng rng(14);
  BsqWeightSource source("w", {8, 8}, 8, rng);
  EXPECT_EQ(source.active_bits(), 8);
  const Tensor& w = source.weight(true);
  // 8-bit decomposition: error <= s/255 half-step.
  const float scale = max_abs_scale(w);
  EXPECT_GT(scale, 0.0f);
}

TEST(Bsq, WeightsLandOnEightBitGrid) {
  Rng rng(15);
  BsqWeightSource source("w", {6, 6}, 6, rng);
  const Tensor& w = source.weight(true);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  const float s = params[0]->value[0];  // scale is first
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    const float grid = w[i] / s * 255.0f;
    EXPECT_NEAR(grid, std::round(grid), 1e-2f);
  }
}

TEST(Bsq, PruneRemovesUnusedBitsAndRequantizes) {
  Rng rng(16);
  BsqWeightSource source("w", {10, 10}, 10, rng);
  Tensor before = source.weight(true);
  // Aggressive threshold: every bit with < 60% usage dies.
  const int removed = source.prune_bits(0.6f);
  EXPECT_GT(removed, 0);
  EXPECT_EQ(source.active_bits(), 8 - removed);
  EXPECT_GE(source.active_bits(), 1);
  EXPECT_DOUBLE_EQ(source.bits_per_weight(), source.active_bits());
  // Re-quantized weights still approximate the pre-prune weights.
  Tensor after = source.weight(true);
  EXPECT_LT(max_abs_diff(before, after), max_abs_scale(before) * 0.6f);
}

TEST(Bsq, SparsityRegularizerPushesActiveLatentsOnly) {
  Rng rng(17);
  BsqWeightSource source("w", {4, 4}, 4, rng);
  source.add_sparsity_regularizer(0.1f);
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  // Latents sit at 0.25/0.75 > 0, so every plane entry receives +0.1.
  bool any_pushed = false;
  for (std::size_t p = 1; p < params.size(); ++p) {
    for (std::int64_t i = 0; i < params[p]->grad.numel(); ++i) {
      if (params[p]->grad[i] != 0.0f) {
        EXPECT_FLOAT_EQ(params[p]->grad[i], 0.1f);
        any_pushed = true;
      }
    }
  }
  EXPECT_TRUE(any_pushed);
}

TEST(Bsq, SteBackwardRoutesGradientToActivePlanes) {
  Rng rng(18);
  BsqWeightSource source("w", {2, 2}, 2, rng);
  source.weight(true);
  source.backward(Tensor::full({2, 2}, 1.0f));
  std::vector<Parameter*> params;
  source.collect_parameters(params);
  float total = 0.0f;
  for (Parameter* param : params) {
    for (std::int64_t i = 0; i < param->grad.numel(); ++i) {
      total += std::fabs(param->grad[i]);
    }
  }
  EXPECT_GT(total, 0.0f);
}

// --------------------------------------- cross-family engine parity ----
//
// All five WeightSource families materialize through the shared
// BitPlaneEngine / quant_kernels pipeline. The checks below run one
// identical harness over every family: (a) the analytic backward of each
// source matches a finite-difference probe of its own forward (for the
// STE-style families the epsilon spans the quantization step, so the FD
// measures the surrogate slope the STE claims), and (b) pooled (multi-
// thread) and serial execution produce bit-identical weights and gradients.

struct FamilyCase {
  std::string name;
  // Builds a ready-to-train source of the given shape (fan_in = last dim).
  std::function<WeightSourcePtr(Rng&, std::vector<std::int64_t>)> make;
  // Finite-difference epsilons for one parameter coordinate; several values
  // are averaged (used where the forward is a staircase).
  std::function<std::vector<float>(const WeightSource&, const Parameter&,
                                   std::int64_t)>
      eps_list;
  // Rejects coordinates where the FD probe is ill-posed (the scale argmax,
  // clip edges, rounding-boundary straddles).
  std::function<bool(const WeightSource&, const Parameter&, std::int64_t)>
      coordinate_ok;
  double rtol = 5e-2;
  double atol = 1e-3;
};

std::int64_t fan_in_of(const std::vector<std::int64_t>& shape) {
  return shape.back();
}

std::vector<FamilyCase> family_cases() {
  std::vector<FamilyCase> cases;

  {  // CSQ: smooth sigmoid gates — plain small-eps FD on every parameter.
    FamilyCase fc;
    fc.name = "csq";
    fc.make = [](Rng& rng, std::vector<std::int64_t> shape) {
      CsqWeightOptions options;
      auto src = std::make_unique<CsqWeightSource>(
          "w", shape, fan_in_of(shape), options, rng);
      src->set_beta(3.0f);
      return WeightSourcePtr(std::move(src));
    };
    fc.eps_list = [](const WeightSource&, const Parameter&, std::int64_t) {
      return std::vector<float>{1e-3f};
    };
    fc.coordinate_ok = [](const WeightSource&, const Parameter&,
                          std::int64_t) { return true; };
    fc.rtol = 5e-2;
    fc.atol = 1e-3;
    cases.push_back(std::move(fc));
  }

  {  // BSQ: latents sit at 0.25/0.75, so eps=0.5 flips the rounded bit
     // exactly once per side and the clipped STE matches the FD exactly.
    FamilyCase fc;
    fc.name = "bsq";
    fc.make = [](Rng& rng, std::vector<std::int64_t> shape) {
      return WeightSourcePtr(std::make_unique<BsqWeightSource>(
          "w", shape, fan_in_of(shape), rng));
    };
    fc.eps_list = [](const WeightSource&, const Parameter& param,
                     std::int64_t) {
      const bool is_scale = param.value.numel() == 1;
      return std::vector<float>{is_scale ? 1e-3f : 0.5f};
    };
    fc.coordinate_ok = [](const WeightSource&, const Parameter&,
                          std::int64_t) { return true; };
    fc.rtol = 2e-2;
    fc.atol = 1e-5;
    cases.push_back(std::move(fc));
  }

  {  // STE-Uniform: eps = one grid step; away from the clip edge and the
     // scale argmax the staircase shifts exactly one level → FD = 1.
    FamilyCase fc;
    fc.name = "ste_uniform";
    fc.make = [](Rng& rng, std::vector<std::int64_t> shape) {
      return WeightSourcePtr(std::make_unique<SteUniformWeightSource>(
          "w", shape, fan_in_of(shape), /*bits=*/3, rng));
    };
    fc.eps_list = [](const WeightSource&, const Parameter& param,
                     std::int64_t) {
      const float scale = max_abs(param.value);
      return std::vector<float>{scale / 7.0f};
    };
    fc.coordinate_ok = [](const WeightSource&, const Parameter& param,
                          std::int64_t index) {
      const float scale = max_abs(param.value);
      const float step = scale / 7.0f;
      return std::fabs(param.value[index]) < scale - 1.5f * step;
    };
    fc.rtol = 5e-3;
    fc.atol = 1e-3;
    cases.push_back(std::move(fc));
  }

  {  // DoReFa: latents are rewritten to the near-linear region of tanh; the
     // per-coordinate eps is sized so the normalized value moves exactly one
     // grid level, making the FD track the surrogate (1-tanh^2)/max slope.
    FamilyCase fc;
    fc.name = "dorefa";
    fc.make = [](Rng& rng, std::vector<std::int64_t> shape) {
      auto src = std::make_unique<DorefaWeightSource>(
          "w", shape, fan_in_of(shape), /*bits=*/2, rng);
      std::vector<Parameter*> params;
      src->collect_parameters(params);
      Tensor& latent = params[0]->value;
      for (std::int64_t i = 0; i < latent.numel(); ++i) {
        latent[i] = rng.uniform(-0.3f, 0.3f);
      }
      latent[0] = 0.35f;  // pins the max|tanh| away from probed coords
      return WeightSourcePtr(std::move(src));
    };
    const auto max_tanh = [](const Parameter& param) {
      float best = 0.0f;
      for (std::int64_t i = 0; i < param.value.numel(); ++i) {
        best = std::max(best, std::fabs(std::tanh(param.value[i])));
      }
      return best;
    };
    fc.eps_list = [max_tanh](const WeightSource&, const Parameter& param,
                             std::int64_t index) {
      const float t = std::tanh(param.value[index]);
      const float level_step = 2.0f * max_tanh(param) / 3.0f;  // 2^2-1 levels
      return std::vector<float>{level_step / (1.0f - t * t)};
    };
    fc.coordinate_ok = [max_tanh](const WeightSource&, const Parameter& param,
                                  std::int64_t index) {
      const float max_t = max_tanh(param);
      const float t = std::tanh(param.value[index]);
      // The one-level step is 2*max_t/3 in tanh units; the perturbed tanh
      // must stay below max_t or the max-abs normalizer itself would move.
      if (std::fabs(t) > 0.25f * max_t) return false;
      const float norm3 = 3.0f * (t / (2.0f * max_t) + 0.5f);
      const float frac = norm3 - std::round(norm3);
      return std::fabs(frac) < 0.3f;  // rounding-boundary guard
    };
    fc.rtol = 0.15;
    fc.atol = 1e-3;
    cases.push_back(std::move(fc));
  }

  {  // LQ-Nets: the staircase is non-uniform, so the FD averages several
     // wide epsilons; near the center of the range the secant slope tracks
     // the STE's unit pass-through.
    FamilyCase fc;
    fc.name = "lqnets";
    fc.make = [](Rng& rng, std::vector<std::int64_t> shape) {
      auto src = std::make_unique<LqNetsWeightSource>(
          "w", shape, fan_in_of(shape), /*bits=*/2, rng);
      for (int i = 0; i < 8; ++i) src->weight(true);  // settle QEM
      return WeightSourcePtr(std::move(src));
    };
    fc.eps_list = [](const WeightSource&, const Parameter& param,
                     std::int64_t) {
      const float m = max_abs(param.value);
      return std::vector<float>{0.6f * m, 0.8f * m, 1.0f * m};
    };
    fc.coordinate_ok = [](const WeightSource&, const Parameter& param,
                          std::int64_t index) {
      return std::fabs(param.value[index]) < 0.35f * max_abs(param.value);
    };
    fc.rtol = 0.4;
    fc.atol = 1e-2;
    cases.push_back(std::move(fc));
  }

  return cases;
}

class WeightSourceFamilyTest : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(WeightSourceFamilyTest, AnalyticBackwardMatchesFiniteDifference) {
  const FamilyCase& fc = GetParam();
  Rng rng(123);
  WeightSourcePtr source = fc.make(rng, {10, 14});

  const Tensor& w0 = source->weight(/*training=*/true);
  Rng probe_rng(321);
  Tensor probe = random_tensor(w0.shape(), probe_rng);
  source->backward(probe);

  std::vector<Parameter*> params;
  source->collect_parameters(params);
  ASSERT_FALSE(params.empty());

  Rng pick(777);
  int checked = 0;
  for (Parameter* param : params) {
    int param_checked = 0;
    for (int attempt = 0; attempt < 64 && param_checked < 3; ++attempt) {
      const auto index = static_cast<std::int64_t>(pick.uniform_int(
          static_cast<std::uint32_t>(param->value.numel())));
      if (!fc.coordinate_ok(*source, *param, index)) continue;
      const float original = param->value[index];
      const std::vector<float> epss = fc.eps_list(*source, *param, index);
      ASSERT_FALSE(epss.empty());
      double numeric = 0.0;
      for (const float eps : epss) {
        numeric += testing::numeric_derivative(
            [&](float x) {
              param->value[index] = x;
              param->mark_updated();  // direct-mutation contract
              return static_cast<double>(
                  testing::probe_loss(source->weight(/*training=*/false),
                                      probe));
            },
            original, eps);
      }
      numeric /= static_cast<double>(epss.size());
      param->value[index] = original;
      param->mark_updated();
      SCOPED_TRACE(fc.name + ": " + param->name + "[" +
                   std::to_string(index) + "]");
      testing::expect_close(param->grad[index], numeric, fc.rtol, fc.atol);
      ++param_checked;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0) << fc.name << ": every probe coordinate was skipped";
}

TEST_P(WeightSourceFamilyTest, PooledMaterializationBitIdenticalToSerial) {
  const FamilyCase& fc = GetParam();
  const KernelExec prior = default_kernel_exec();
  // > kQuantChunk elements so the pooled path actually spans chunks.
  const std::vector<std::int64_t> shape = {37, 113};

  Rng rng_serial(91);
  set_default_kernel_exec(KernelExec::serial);
  WeightSourcePtr serial_src = fc.make(rng_serial, shape);
  const Tensor& w_serial = serial_src->weight(/*training=*/true);
  Rng probe_rng(17);
  Tensor probe = random_tensor(w_serial.shape(), probe_rng);
  serial_src->backward(probe);

  Rng rng_pooled(91);
  set_default_kernel_exec(KernelExec::pooled);
  WeightSourcePtr pooled_src = fc.make(rng_pooled, shape);
  const Tensor& w_pooled = pooled_src->weight(/*training=*/true);
  pooled_src->backward(probe);

  set_default_kernel_exec(prior);

  ASSERT_EQ(w_serial.numel(), w_pooled.numel());
  EXPECT_EQ(std::memcmp(w_serial.data(), w_pooled.data(),
                        sizeof(float) * static_cast<std::size_t>(
                                            w_serial.numel())),
            0)
      << fc.name << ": pooled weights diverge from serial";

  // Gradients ride the same fixed chunk grid: bit-identical too.
  std::vector<Parameter*> params_serial;
  std::vector<Parameter*> params_pooled;
  serial_src->collect_parameters(params_serial);
  pooled_src->collect_parameters(params_pooled);
  ASSERT_EQ(params_serial.size(), params_pooled.size());
  for (std::size_t p = 0; p < params_serial.size(); ++p) {
    ASSERT_EQ(params_serial[p]->grad.numel(), params_pooled[p]->grad.numel());
    EXPECT_EQ(std::memcmp(params_serial[p]->grad.data(),
                          params_pooled[p]->grad.data(),
                          sizeof(float) * static_cast<std::size_t>(
                                              params_serial[p]->grad.numel())),
              0)
        << fc.name << ": gradient of " << params_serial[p]->name
        << " diverges between pooled and serial";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, WeightSourceFamilyTest, ::testing::ValuesIn(family_cases()),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      return info.param.name;
    });

// ----------------------------------------------------------- act quant --

TEST(FixedActQuant, QuantizesToGridAndTracksRange) {
  FixedActQuant quant("aq", 2);
  Tensor input = Tensor::from_data({1, 4}, {0.0f, 1.0f, 2.0f, 4.0f});
  Tensor out = quant.forward(input, /*training=*/true);
  const float range = quant.range();
  EXPECT_NEAR(range, 4.0f, 1e-4f);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const float grid = out[i] / range * 3.0f;
    EXPECT_NEAR(grid, std::round(grid), 1e-3f);
  }
}

TEST(FixedActQuant, BackwardMasksOutOfRange) {
  FixedActQuant quant("aq", 4);
  Tensor warmup = Tensor::from_data({1, 2}, {1.0f, 1.0f});
  quant.forward(warmup, true);  // range ~1
  Tensor input = Tensor::from_data({1, 2}, {0.5f, 50.0f});
  quant.forward(input, true);
  Tensor grad = quant.backward(Tensor::full({1, 2}, 1.0f));
  EXPECT_FLOAT_EQ(grad[0], 1.0f);
  EXPECT_FLOAT_EQ(grad[1], 0.0f);  // above the clip: STE masks it
}

TEST(FixedActQuant, ObserveModePassesThrough) {
  FixedActQuant quant("aq", 2);
  quant.set_quantize_enabled(false);
  Tensor input = Tensor::from_data({1, 3}, {0.123f, 0.456f, 0.789f});
  Tensor out = quant.forward(input, true);
  EXPECT_LT(max_abs_diff(out, input), 1e-7f);
  EXPECT_GT(quant.range(), 0.0f);  // statistics still update
}

TEST(PactActQuant, ClipGradientFlowsToAlpha) {
  PactActQuant quant("pact", 4, /*alpha_init=*/1.0f);
  Tensor input = Tensor::from_data({1, 3}, {0.5f, 2.0f, 3.0f});
  quant.forward(input, true);
  Tensor grad = quant.backward(Tensor::full({1, 3}, 1.0f));
  EXPECT_FLOAT_EQ(grad[0], 1.0f);  // in range: STE
  EXPECT_FLOAT_EQ(grad[1], 0.0f);  // clipped
  std::vector<Parameter*> params;
  quant.collect_parameters(params);
  EXPECT_FLOAT_EQ(params[0]->grad[0], 2.0f);  // two clipped entries
}

TEST(PactActQuant, OutputBoundedByAlpha) {
  PactActQuant quant("pact", 3, 0.7f);
  Rng rng(19);
  Tensor input = random_tensor({2, 8}, rng, -1.0f, 5.0f);
  Tensor out = quant.forward(input, false);
  EXPECT_LE(max_value(out), 0.7f + 1e-5f);
  EXPECT_GE(min_value(out), 0.0f);
}

TEST(ActQuantFactories, RegistryRecordsInstances) {
  std::vector<FixedActQuant*> registry;
  auto factory = fixed_act_quant_factory(4, &registry);
  ModulePtr a = factory("aq1");
  ModulePtr b = factory("aq2");
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry[0]->bits(), 4);
}

// ----------------------------------------------------------------- ptq --

TEST(Ptq, QuantizesAllDenseLayersInPlace) {
  Rng rng(20);
  ModelConfig config;
  config.base_width = 4;
  Model model = make_resnet20(config, dense_weight_factory(), nullptr, rng);
  const PtqReport report =
      quantize_dense_weights(model, 4, PtqCalibration::max_abs);
  EXPECT_EQ(report.layers_quantized,
            static_cast<int>(model.quant_layers().size()));
  EXPECT_GT(report.mean_relative_error, 0.0);
  EXPECT_LT(report.mean_relative_error, 0.2);

  // Every dense weight now sits on its layer's 4-bit grid.
  for (const QuantLayer& layer : model.quant_layers()) {
    auto* dense = dynamic_cast<DenseWeightSource*>(layer.source);
    ASSERT_NE(dense, nullptr);
    const Tensor& w = dense->parameter().value;
    const float scale = max_abs_scale(w);
    for (std::int64_t i = 0; i < std::min<std::int64_t>(w.numel(), 50); ++i) {
      const float grid = w[i] / scale * 15.0f;
      EXPECT_NEAR(grid, std::round(grid), 1e-2f);
    }
  }
}

TEST(Ptq, LowerBitsGiveLargerError) {
  Rng rng(21);
  ModelConfig config;
  config.base_width = 4;
  Model model_a = make_resnet20(config, dense_weight_factory(), nullptr, rng);
  Rng rng2(21);
  Model model_b = make_resnet20(config, dense_weight_factory(), nullptr, rng2);
  const PtqReport high =
      quantize_dense_weights(model_a, 8, PtqCalibration::max_abs);
  const PtqReport low =
      quantize_dense_weights(model_b, 2, PtqCalibration::max_abs);
  EXPECT_GT(low.mean_relative_error, high.mean_relative_error * 4);
}

}  // namespace
}  // namespace csq
